"""Rule-level tests over the fixture corpus.

Every rule has at least one known-bad fixture (positives asserted by exact
``(rule, path-suffix, line)`` location) and a known-good fixture (negatives
asserted by absence).  The corpus lives in ``tests/analysis/corpus`` and is
never imported — the analyzer reads it as source text.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze

CORPUS = Path(__file__).parent / "corpus"


@pytest.fixture(scope="module")
def corpus_report():
    return analyze([CORPUS], root=CORPUS)


@pytest.fixture(scope="module")
def locations(corpus_report):
    return {(f.rule, f.path, f.line) for f in corpus_report.findings}


@pytest.fixture(scope="module")
def keys(corpus_report):
    return {f.key for f in corpus_report.findings}


class TestDeterminismRule:
    EXPECTED = [
        ("determinism", "determinism_bad.py", 15),  # random.random()
        ("determinism", "determinism_bad.py", 19),  # default_rng() unseeded
        ("determinism", "determinism_bad.py", 23),  # default_rng(seed=None default)
        ("determinism", "determinism_bad.py", 27),  # np.random.rand legacy global
        ("determinism", "determinism_bad.py", 31),  # secrets.token_hex
        ("determinism", "determinism_bad.py", 35),  # time.time wall clock
    ]

    @pytest.mark.parametrize("expected", EXPECTED, ids=lambda e: f"line-{e[2]}")
    def test_positive_locations(self, locations, expected):
        assert expected in locations

    def test_no_findings_in_good_fixture(self, corpus_report):
        assert not [f for f in corpus_report.findings
                    if f.path == "determinism_good.py"]

    def test_keys_name_the_offending_call(self, keys):
        assert "draw_global:rng:random.random" in keys
        assert "draw_unseeded:default-rng:np.random.default_rng" in keys
        assert "machine_token:secrets:secrets.token_hex" in keys
        assert "stamp:wall-clock:time.time" in keys


class TestLockDisciplineRule:
    EXPECTED = [
        ("lock-discipline", "locking_bad.py", 13),  # hits += 1 unlocked
        ("lock-discipline", "locking_bad.py", 20),  # entries.append unlocked
        ("lock-discipline", "locking_bad.py", 29),  # inherited guard, subclass
    ]

    @pytest.mark.parametrize("expected", EXPECTED, ids=lambda e: f"line-{e[2]}")
    def test_positive_locations(self, locations, expected):
        assert expected in locations

    def test_with_lock_and_holds_lock_are_negative(self, corpus_report):
        bad_lines = {f.line for f in corpus_report.findings
                     if f.path == "locking_bad.py"}
        assert bad_lines == {13, 20, 29}

    def test_inherited_guard_key_uses_subclass_qualname(self, keys):
        assert "SubCounter.reset:hits" in keys


class TestResourceLifecycleRule:
    EXPECTED = [
        ("resource-lifecycle", "lifecycle_bad.py", 10),  # mmap leak
        ("resource-lifecycle", "lifecycle_bad.py", 18),  # SharedMemory leak
        ("resource-lifecycle", "lifecycle_bad.py", 24),  # Expr-statement drop
        ("resource-lifecycle", "storage/lifecycle_open_bad.py", 6),  # storage open
    ]

    @pytest.mark.parametrize("expected", EXPECTED, ids=lambda e: e[1] + f":{e[2]}")
    def test_positive_locations(self, locations, expected):
        assert expected in locations

    def test_every_accepted_pattern_is_negative(self, corpus_report):
        assert not [f for f in corpus_report.findings
                    if f.path == "lifecycle_good.py"]

    def test_fd_transferred_into_mmap_not_flagged(self, corpus_report):
        # leak_mapping opens an fd that is consumed by mmap.mmap(fd, ...):
        # only the mapping itself must be reported.
        keys = {f.key for f in corpus_report.findings
                if f.path == "lifecycle_bad.py"}
        assert "leak_mapping:mmap.mmap" in keys
        assert "leak_mapping:os.open" not in keys

    def test_plain_open_only_tracked_under_storage(self, corpus_report):
        # lifecycle_good.py (not under storage/) opens files freely; the
        # storage-scoped fixture is where open() leaks are reported.
        open_findings = [f for f in corpus_report.findings if f.key.endswith(":open")]
        assert {f.path for f in open_findings} == {"storage/lifecycle_open_bad.py"}


class TestApiContractRule:
    EXPECTED = [
        ("api-contract", "contract_caps_bad.py", 7),        # partial Capabilities
        ("api-contract", "server/contract_bad.py", 20),     # naked 500
        ("api-contract", "server/contract_bad.py", 24),     # unregistered 418
    ]

    @pytest.mark.parametrize("expected", EXPECTED, ids=lambda e: e[1] + f":{e[2]}")
    def test_positive_locations(self, locations, expected):
        assert expected in locations

    def test_full_capabilities_and_registered_statuses_pass(self, corpus_report):
        lines = {f.line for f in corpus_report.findings
                 if f.path == "server/contract_bad.py"}
        assert lines == {20, 24}
        caps = [f for f in corpus_report.findings
                if f.path == "contract_caps_bad.py"]
        assert [f.key for f in caps] == ["partial_caps:capabilities"]

    def test_capabilities_message_names_missing_fields(self, corpus_report):
        finding = next(f for f in corpus_report.findings
                       if f.key == "partial_caps:capabilities")
        for field in ("incremental_updates", "vectorized", "parallel_safe", "native"):
            assert field in finding.message

    def test_envelope_checks_scoped_to_server_paths(self, corpus_report):
        envelope = [f for f in corpus_report.findings if ":envelope:" in f.key
                    or ":error-code:" in f.key]
        assert all(f.path.startswith("server/") for f in envelope)


class TestNoBareThreadRule:
    EXPECTED = [
        ("no-bare-thread", "threads_bad.py", 8),    # threading.Thread
        ("no-bare-thread", "threads_bad.py", 14),   # ThreadPoolExecutor
        ("no-bare-thread", "threads_bad.py", 18),   # threading.Timer
    ]

    @pytest.mark.parametrize("expected", EXPECTED, ids=lambda e: f"line-{e[2]}")
    def test_positive_locations(self, locations, expected):
        assert expected in locations

    def test_local_perf_timer_class_not_flagged(self, corpus_report):
        # The repo ships its own `Timer` perf context manager; only the
        # dotted `threading.Timer` form spawns and only it is reported.
        lines = {f.line for f in corpus_report.findings
                 if f.path == "threads_bad.py"}
        assert lines == {8, 14, 18}


class TestCorpusTotals:
    def test_exact_finding_count(self, corpus_report):
        # A new rule (or a loosened heuristic) shows up here first.
        assert len(corpus_report.findings) == 19

    def test_all_five_rules_fire(self, corpus_report):
        assert {f.rule for f in corpus_report.findings} == {
            "determinism",
            "lock-discipline",
            "resource-lifecycle",
            "api-contract",
            "no-bare-thread",
        }

    def test_findings_sorted_and_unique(self, corpus_report):
        identities = [f.identity() for f in corpus_report.findings]
        assert len(identities) == len(set(identities))
        assert corpus_report.findings == sorted(corpus_report.findings)
