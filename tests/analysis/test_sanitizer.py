"""Tests for the runtime lock-order sanitizer.

Most tests drive the :class:`LockSanitizer` object API directly (no
monkey-patching of ``threading``); one end-to-end test runs a generated
ABBA test file under ``pytest -p repro.analysis.sanitizer`` in a
subprocess and asserts the session exit status flips to 1.
"""

import os
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

from repro.analysis import sanitizer as san
from repro.analysis.sanitizer import (
    LockSanitizer,
    Violation,
    _InstrumentedLock,
    _is_project_code,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_lock(sanitizer: LockSanitizer, site: str) -> _InstrumentedLock:
    sanitizer.locks_instrumented += 1
    return _InstrumentedLock(threading.Lock(), site, sanitizer)


class TestAcquisitionGraph:
    def test_consistent_order_records_edges_without_violations(self):
        sanitizer = LockSanitizer()
        a = make_lock(sanitizer, "mod.py:10")
        b = make_lock(sanitizer, "mod.py:20")
        for _ in range(3):
            with a, b:
                pass
        assert sanitizer.edges_recorded == 1
        assert sanitizer.violations == []

    def test_abba_inversion_detected(self):
        sanitizer = LockSanitizer()
        a = make_lock(sanitizer, "mod.py:10")
        b = make_lock(sanitizer, "mod.py:20")
        with a, b:
            pass
        with b, a:  # inverted order: cycle in the site graph
            pass
        kinds = [v.kind for v in sanitizer.violations]
        assert kinds == ["lock-order-inversion"]
        message = sanitizer.violations[0].message
        assert "mod.py:10" in message and "mod.py:20" in message
        assert "second order" in sanitizer.violations[0].details

    def test_transitive_inversion_detected(self):
        sanitizer = LockSanitizer()
        a = make_lock(sanitizer, "mod.py:10")
        b = make_lock(sanitizer, "mod.py:20")
        c = make_lock(sanitizer, "mod.py:30")
        with a, b:
            pass
        with b, c:
            pass
        with c, a:  # closes a -> b -> c -> a
            pass
        assert [v.kind for v in sanitizer.violations] == ["lock-order-inversion"]

    def test_same_site_nesting_reported_once(self):
        sanitizer = LockSanitizer()
        first = make_lock(sanitizer, "pool.py:7")
        second = make_lock(sanitizer, "pool.py:7")
        with first, second:
            pass
        with first, second:  # second occurrence must not duplicate
            pass
        assert [v.kind for v in sanitizer.violations] == ["same-site-nesting"]
        assert "pool.py:7" in sanitizer.violations[0].message

    def test_reentrant_rlock_is_not_an_edge(self):
        sanitizer = LockSanitizer()
        lock = _InstrumentedLock(threading.RLock(), "mod.py:5", sanitizer)
        sanitizer.locks_instrumented += 1
        with lock:
            with lock:  # same instance: reentrancy, not nesting
                pass
            # still held here: count bookkeeping must survive the inner exit
            assert sanitizer._held()[0].count == 1
        assert sanitizer._held() == []
        assert sanitizer.edges_recorded == 0
        assert sanitizer.violations == []

    def test_per_thread_held_stacks_are_independent(self):
        sanitizer = LockSanitizer()
        a = make_lock(sanitizer, "mod.py:10")
        b = make_lock(sanitizer, "mod.py:20")

        def worker() -> None:
            with b:  # holds nothing else on *this* thread: no edge
                pass

        with a:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert sanitizer.edges_recorded == 0

    def test_non_blocking_acquire_failure_records_nothing(self):
        sanitizer = LockSanitizer()
        a = make_lock(sanitizer, "mod.py:10")
        assert a.acquire() is True
        assert a.locked()
        assert a.acquire(blocking=False) is False  # plain Lock, already held
        a.release()
        assert sanitizer._held() == []


class TestDispatchContract:
    class FakeApp:
        pass

    def test_single_thread_dispatch_is_clean(self):
        sanitizer = LockSanitizer()
        app = self.FakeApp()
        for _ in range(5):
            sanitizer.record_dispatch(app)
        assert sanitizer.dispatch_calls == 5
        assert sanitizer.violations == []

    def test_second_thread_breaks_the_contract_once(self):
        sanitizer = LockSanitizer()
        app = self.FakeApp()
        sanitizer.record_dispatch(app)
        threads = [
            threading.Thread(target=sanitizer.record_dispatch, args=(app,))
            for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        kinds = [v.kind for v in sanitizer.violations]
        assert kinds == ["dispatch-threads"]  # reported once, not per call
        assert "FakeApp" in sanitizer.violations[0].message

    def test_apps_are_tracked_independently(self):
        sanitizer = LockSanitizer()
        one, two = self.FakeApp(), self.FakeApp()
        sanitizer.record_dispatch(one)
        sanitizer.record_dispatch(two)
        assert sanitizer.violations == []


class TestInstallUninstall:
    def test_patch_and_restore_threading_primitives(self):
        real_lock, real_rlock = threading.Lock, threading.RLock
        sanitizer = LockSanitizer()
        sanitizer.install()
        try:
            assert threading.Lock is not real_lock
            lock = threading.Lock()  # allocated from project test code
            assert isinstance(lock, _InstrumentedLock)
            assert sanitizer.locks_instrumented == 1
            with lock:
                assert lock.locked()
        finally:
            sanitizer.uninstall()
        assert threading.Lock is real_lock
        assert threading.RLock is real_rlock

    def test_install_is_idempotent(self):
        sanitizer = LockSanitizer()
        sanitizer.install()
        try:
            patched = threading.Lock
            sanitizer.install()
            assert threading.Lock is patched
        finally:
            sanitizer.uninstall()
        sanitizer.uninstall()  # second uninstall is a no-op
        assert threading.Lock is not None

    def test_run_blocking_restored_after_uninstall(self):
        from repro.server.app import SimRankHTTPApp

        original = SimRankHTTPApp._run_blocking
        sanitizer = LockSanitizer()
        sanitizer.install()
        try:
            assert SimRankHTTPApp._run_blocking is not original
        finally:
            sanitizer.uninstall()
        assert SimRankHTTPApp._run_blocking is original


class TestProjectCodeFilter:
    def test_site_packages_excluded(self):
        assert not _is_project_code("/usr/lib/python3.11/site-packages/x/y.py")

    def test_synthetic_filenames_excluded(self):
        assert not _is_project_code("<string>")
        assert not _is_project_code("<frozen importlib._bootstrap>")

    def test_sanitizer_own_package_excluded(self):
        assert not _is_project_code(str(Path(san.__file__)))

    def test_repo_source_included(self):
        assert _is_project_code(str(REPO_ROOT / "src" / "repro" / "parallel" / "pool.py"))


class TestSummaryAndRender:
    def test_summary_counts(self):
        sanitizer = LockSanitizer()
        a = make_lock(sanitizer, "mod.py:10")
        b = make_lock(sanitizer, "mod.py:20")
        with a, b:
            pass
        text = sanitizer.summary()
        assert "2 lock(s) instrumented" in text
        assert "1 acquisition-order edge(s)" in text
        assert "0 violation(s)" in text

    def test_violation_render_includes_details(self):
        violation = Violation(kind="lock-order-inversion", message="m", details="d")
        assert violation.render() == "[lock-order-inversion] m\nd"
        assert Violation(kind="x", message="m").render() == "[x] m"


class TestPluginHooks:
    def test_configure_unconfigure_cycle(self):
        assert san.get_active() is None
        san.pytest_configure(config=None)
        try:
            active = san.get_active()
            assert isinstance(active, LockSanitizer)
            san.pytest_configure(config=None)  # idempotent
            assert san.get_active() is active
        finally:
            san.pytest_unconfigure(config=None)
        assert san.get_active() is None

    def test_sessionfinish_flips_exit_status(self):
        class Session:
            exitstatus = 0

        san.pytest_configure(config=None)
        try:
            active = san.get_active()
            assert active is not None
            active.violations.append(Violation(kind="x", message="m"))
            session = Session()
            san.pytest_sessionfinish(session, exitstatus=0)
            assert session.exitstatus == 1
            failed = Session()
            failed.exitstatus = 2
            san.pytest_sessionfinish(failed, exitstatus=2)
            assert failed.exitstatus == 2  # never masks a real failure
        finally:
            san.pytest_unconfigure(config=None)

    def test_terminal_summary_lists_violations(self):
        class Reporter:
            def __init__(self) -> None:
                self.lines: list[str] = []

            def section(self, title: str) -> None:
                self.lines.append(f"== {title} ==")

            def write_line(self, line: str) -> None:
                self.lines.append(line)

        san.pytest_terminal_summary(terminalreporter=None)  # inactive: no-op
        san.pytest_configure(config=None)
        try:
            active = san.get_active()
            assert active is not None
            active.violations.append(Violation(kind="x", message="boom"))
            reporter = Reporter()
            san.pytest_terminal_summary(reporter)
            text = "\n".join(reporter.lines)
            assert "lock-order sanitizer" in text
            assert "[x] boom" in text
        finally:
            san.pytest_unconfigure(config=None)


class TestEndToEnd:
    def test_abba_test_fails_the_session(self, tmp_path):
        test_file = tmp_path / "test_abba.py"
        test_file.write_text(textwrap.dedent(
            """
            import threading


            def test_inverted_lock_order():
                a = threading.Lock()
                b = threading.Lock()
                with a:
                    with b:
                        pass
                with b:
                    with a:
                        pass
            """
        ))
        env_cwd = tmp_path  # cwd-relative filter marks the temp test as project code
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-p", "repro.analysis.sanitizer",
             str(test_file), "-q"],
            capture_output=True,
            text=True,
            cwd=env_cwd,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "lock-order sanitizer" in proc.stdout
        assert "lock-order-inversion" in proc.stdout

    def test_clean_suite_stays_green(self, tmp_path):
        test_file = tmp_path / "test_ordered.py"
        test_file.write_text(textwrap.dedent(
            """
            import threading


            def test_consistent_lock_order():
                a = threading.Lock()
                b = threading.Lock()
                for _ in range(2):
                    with a:
                        with b:
                            pass
            """
        ))
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-p", "repro.analysis.sanitizer",
             str(test_file), "-q"],
            capture_output=True,
            text=True,
            cwd=tmp_path,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "lock-order sanitizer" in proc.stdout
        assert "1 acquisition-order edge(s)" in proc.stdout


@pytest.fixture(autouse=True)
def _no_leaked_patches():
    yield
    assert threading.Lock is san._REAL_LOCK
    assert threading.RLock is san._REAL_RLOCK
