"""mypy --strict gate over the typed tiers (analysis, errors, estimator).

Skips when mypy is not installed (the dev image may omit it); the CI
``analysis`` job installs mypy and runs this for real.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parents[2]
TARGETS = [
    "src/repro/analysis",
    "src/repro/errors.py",
    "src/repro/api/estimator.py",
]


def test_mypy_strict_on_typed_tiers():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", *TARGETS],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
