"""Deprecation hygiene: refresh()/rebuild() alias sync() with a warning."""

import numpy as np
import pytest

from repro import ProbeSim, SLINGIndex, TSFIndex


class TestDeprecatedMaintenanceVerbs:
    def test_probesim_refresh_warns_and_still_works(self, toy):
        graph = toy.copy()
        engine = ProbeSim(graph, eps_a=0.2, seed=1, num_walks=40)
        graph.add_edge(0, 5)
        with pytest.warns(DeprecationWarning, match=r"ProbeSim\.refresh\(\) is deprecated"):
            engine.refresh()
        assert engine.graph.num_edges == graph.num_edges  # picked up the edge

    def test_sling_rebuild_warns_and_still_works(self, toy):
        graph = toy.copy()
        index = SLINGIndex(graph, theta=1e-3, seed=2)
        graph.add_edge(0, 5)
        with pytest.warns(DeprecationWarning, match=r"SLINGIndex\.rebuild\(\)"):
            index.rebuild()
        assert np.all(np.isfinite(index.single_source(5).scores))

    def test_tsf_rebuild_warns_and_still_works(self, toy):
        graph = toy.copy()
        index = TSFIndex(graph, rg=10, rq=2, depth=4, seed=3)
        graph.add_edge(0, 5)
        with pytest.warns(DeprecationWarning, match=r"TSFIndex\.rebuild\(\)"):
            index.rebuild()
        assert np.all(np.isfinite(index.single_source(0).scores))

    def test_sync_does_not_warn(self, toy, recwarn):
        engine = ProbeSim(toy.copy(), eps_a=0.2, seed=1, num_walks=40)
        engine.sync()
        deprecations = [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
        assert not deprecations
