"""Deprecation hygiene: refresh()/rebuild() alias sync() with a warning."""

import numpy as np
import pytest

from repro import ProbeSim, SLINGIndex, TSFIndex


class TestDeprecatedMaintenanceVerbs:
    def test_probesim_refresh_warns_and_still_works(self, toy):
        graph = toy.copy()
        engine = ProbeSim(graph, eps_a=0.2, seed=1, num_walks=40)
        graph.add_edge(0, 5)
        with pytest.warns(DeprecationWarning, match=r"ProbeSim\.refresh\(\) is deprecated"):
            engine.refresh()
        assert engine.graph.num_edges == graph.num_edges  # picked up the edge

    def test_sling_rebuild_warns_and_still_works(self, toy):
        graph = toy.copy()
        index = SLINGIndex(graph, theta=1e-3, seed=2)
        graph.add_edge(0, 5)
        with pytest.warns(DeprecationWarning, match=r"SLINGIndex\.rebuild\(\)"):
            index.rebuild()
        assert np.all(np.isfinite(index.single_source(5).scores))

    def test_tsf_rebuild_warns_and_still_works(self, toy):
        graph = toy.copy()
        index = TSFIndex(graph, rg=10, rq=2, depth=4, seed=3)
        graph.add_edge(0, 5)
        with pytest.warns(DeprecationWarning, match=r"TSFIndex\.rebuild\(\)"):
            index.rebuild()
        assert np.all(np.isfinite(index.single_source(0).scores))

    def test_message_names_replacement_and_removal_version(self, toy):
        """The warning must tell callers what to call instead and when the
        alias disappears — migration from the message alone."""
        from repro.api.estimator import DEPRECATED_VERB_REMOVAL

        engine = ProbeSim(toy.copy(), eps_a=0.2, seed=1, num_walks=40)
        with pytest.warns(DeprecationWarning) as caught:
            engine.refresh()
        message = str(caught[0].message)
        assert message == (
            f"ProbeSim.refresh() is deprecated and will be removed in "
            f"{DEPRECATED_VERB_REMOVAL}; use ProbeSim.sync() instead"
        )

    def test_rebuild_message_names_replacement_and_removal_version(self, toy):
        from repro.api.estimator import DEPRECATED_VERB_REMOVAL

        index = TSFIndex(toy.copy(), rg=10, rq=2, depth=4, seed=3)
        with pytest.warns(DeprecationWarning) as caught:
            index.rebuild()
        message = str(caught[0].message)
        assert "use TSFIndex.sync() instead" in message
        assert f"will be removed in {DEPRECATED_VERB_REMOVAL}" in message

    def test_sync_does_not_warn(self, toy, recwarn):
        engine = ProbeSim(toy.copy(), eps_a=0.2, seed=1, num_walks=40)
        engine.sync()
        deprecations = [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
        assert not deprecations
