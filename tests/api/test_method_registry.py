"""Tests for the method registry and the registry-backed MethodSpec."""

import pytest

from repro.api import registry as reg
from repro.api import SimRankEstimator, capability_rows, create, get_entry, method_names
from repro.errors import ConfigurationError, EvaluationError
from repro.eval.runner import MethodSpec

#: the names the issue/paper experiments rely on.
CORE_NAMES = {"probesim", "probesim-hybrid", "sling", "tsf", "topsim", "mc", "power"}


class TestRegistry:
    def test_core_names_registered(self):
        assert CORE_NAMES <= set(method_names())

    def test_unknown_name_rejected(self, toy):
        with pytest.raises(ConfigurationError, match="unknown method"):
            create("linearized-simrank", toy)

    def test_unknown_config_key_rejected(self, toy):
        with pytest.raises(ConfigurationError, match="config keys"):
            create("power", toy, eps_a=0.1)

    def test_duplicate_registration_rejected(self):
        entry = get_entry("probesim")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.register("probesim", entry.factory)

    def test_replace_allows_reregistration(self):
        entry = get_entry("probesim")
        replaced = reg.register(
            "probesim", entry.factory, summary=entry.summary,
            config_keys=entry.config_keys, probe_config=entry.probe_config,
            capabilities=entry.capabilities, replace=True,
        )
        assert replaced.name == "probesim"
        assert get_entry("probesim").config_keys == entry.config_keys
        assert get_entry("probesim").capabilities == entry.capabilities

    def test_create_builds_estimator(self, toy):
        estimator = create("probesim", toy, eps_a=0.2, seed=4, num_walks=40)
        assert isinstance(estimator, SimRankEstimator)

    def test_seed_accepted_by_deterministic_methods(self, toy):
        # deterministic methods ignore the seed but must accept the keyword
        # so generic callers can pass one config to every method
        assert isinstance(create("power", toy, seed=9), SimRankEstimator)
        assert isinstance(create("topsim", toy, seed=9), SimRankEstimator)

    def test_capability_rows_cover_registry(self):
        rows = capability_rows()
        assert {row["name"] for row in rows} == set(method_names())
        for row in rows:
            assert {"exact", "index", "dynamic", "incremental"} <= set(row)


class TestMethodSpecFromRegistry:
    def test_builds_fresh_conforming_instances(self, toy):
        spec = MethodSpec.from_registry(
            "probesim", toy, eps_a=0.2, seed=2, num_walks=40
        )
        assert spec.name == "probesim"
        first, second = spec.build(), spec.build()
        assert first is not second
        assert isinstance(first, SimRankEstimator)

    def test_label_overrides_display_name(self, toy):
        spec = MethodSpec.from_registry(
            "probesim", toy, label="probesim(eps=0.2)", eps_a=0.2, num_walks=40
        )
        assert spec.name == "probesim(eps=0.2)"

    def test_non_conforming_factory_rejected(self):
        spec = MethodSpec("broken", lambda: object())
        with pytest.raises(EvaluationError, match="protocol"):
            spec.build()
