"""Protocol-conformance tests: every registry entry speaks the five verbs.

Parametrized over the full registry: each method is instantiated on the toy
graph (with its cheap ``probe_config``) and exercised through
``single_source``, ``topk``, ``single_source_many``, ``sync``, and
``capabilities`` — including the batched-vs-looped equivalence contract
under a fixed seed.
"""

import numpy as np
import pytest

from repro.api import Capabilities, SimRankEstimator, create, get_entry, method_names
from repro.core.results import SimRankResult, TopKResult
from repro.errors import QueryError

SEED = 1709
QUERIES = [0, 3, 5, 3]  # duplicate on purpose: batches must tolerate repeats


def make(name, graph, seed=SEED):
    """Instantiate one registry method with its cheap probe config."""
    return create(name, graph, seed=seed, **get_entry(name).probe_config)


@pytest.fixture(params=method_names())
def method_name(request):
    return request.param


class TestConformance:
    def test_isinstance(self, toy, method_name):
        estimator = make(method_name, toy)
        assert isinstance(estimator, SimRankEstimator)

    def test_capabilities(self, toy, method_name):
        caps = make(method_name, toy).capabilities()
        assert isinstance(caps, Capabilities)
        assert caps.method
        # incremental maintenance implies the method is dynamic-capable
        if caps.incremental_updates:
            assert caps.supports_dynamic
        row = caps.as_row()
        assert {"method", "exact", "index", "dynamic", "incremental"} <= set(row)

    def test_capabilities_match_registry_declaration(self, toy, method_name):
        """The entry's static capabilities must agree with live instances."""
        declared = get_entry(method_name).capabilities
        assert declared is not None  # every built-in declares its profile
        assert make(method_name, toy).capabilities() == declared

    def test_single_source(self, toy, method_name):
        estimator = make(method_name, toy)
        result = estimator.single_source(0)
        assert isinstance(result, SimRankResult)
        assert result.num_nodes == toy.num_nodes
        assert result.score(0) == 1.0
        assert np.all(result.scores >= 0.0)

    def test_topk(self, toy, method_name):
        estimator = make(method_name, toy)
        top = estimator.topk(0, 3)
        assert isinstance(top, TopKResult)
        assert top.k == 3
        assert 0 not in top.node_set()  # query node excluded
        assert list(top.scores) == sorted(top.scores, reverse=True)

    def test_topk_invalid_k(self, toy, method_name):
        estimator = make(method_name, toy)
        with pytest.raises(QueryError):
            estimator.topk(0, 0)

    def test_invalid_query_rejected(self, toy, method_name):
        estimator = make(method_name, toy)
        with pytest.raises(QueryError):
            estimator.single_source(toy.num_nodes + 5)

    def test_batched_equals_looped_same_seed(self, toy, method_name):
        """The single_source_many contract: fixed seed => loop equivalence."""
        looped = make(method_name, toy, seed=7)
        batched = make(method_name, toy, seed=7)
        loop_results = [looped.single_source(q) for q in QUERIES]
        batch_results = batched.single_source_many(QUERIES)
        assert len(batch_results) == len(QUERIES)
        for one, many in zip(loop_results, batch_results):
            assert one.query == many.query
            np.testing.assert_array_equal(one.scores, many.scores)

    def test_sync_keeps_answers_current(self, toy, method_name):
        """sync() re-snapshots a mutated source graph for every method."""
        graph = toy.copy()
        estimator = make(method_name, graph)
        estimator.single_source(0)
        # a -> f edge did not exist; after sync every method must see it
        assert not graph.has_edge(0, 5)
        graph.add_edge(0, 5)
        estimator.sync()
        result = estimator.single_source(5)
        assert result.num_nodes == graph.num_nodes
        # node 5 now has in-degree > 0 from node 0's side of the graph, so
        # the estimate vector stays well-formed (no NaN) after maintenance
        assert np.all(np.isfinite(result.scores))

    def test_apply_updates_default(self, toy, method_name):
        """The protocol-level update hook works for every method."""
        from repro.graph.dynamic import EdgeUpdate

        graph = toy.copy()
        estimator = make(method_name, graph)
        update = EdgeUpdate("insert", 0, 5)
        graph.add_edge(0, 5)
        estimator.apply_updates([update])
        assert np.all(np.isfinite(estimator.single_source(0).scores))


class TestStructuralConformance:
    def test_duck_typed_class_conforms(self):
        class Duck:
            def single_source(self, query):
                raise NotImplementedError

            def topk(self, query, k):
                raise NotImplementedError

            def single_source_many(self, queries):
                raise NotImplementedError

            def sync(self):
                raise NotImplementedError

            def capabilities(self):
                raise NotImplementedError

        assert isinstance(Duck(), SimRankEstimator)
        assert issubclass(Duck, SimRankEstimator)

    def test_partial_class_does_not_conform(self):
        class OnlySingleSource:
            def single_source(self, query):
                raise NotImplementedError

        assert not isinstance(OnlySingleSource(), SimRankEstimator)
        assert not isinstance(object(), SimRankEstimator)
