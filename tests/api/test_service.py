"""Tests for the batched, dynamic-graph SimRankService."""

import numpy as np
import pytest

from repro.api import SimRankService
from repro.errors import ConfigurationError, QueryError
from repro.graph import CSRGraph
from repro.graph.dynamic import generate_update_stream


def make_service(graph, **kwargs):
    """A two-method service with cheap configs on the given graph."""
    defaults = dict(
        methods=("probesim", "power"),
        configs={"probesim": {"eps_a": 0.2, "seed": 11, "num_walks": 60}},
    )
    defaults.update(kwargs)
    return SimRankService(graph, **defaults)


class TestConstruction:
    def test_default_method_is_first(self, toy):
        service = make_service(toy.copy())
        assert service.estimator() is service.estimator("probesim")
        assert service.methods == ["power", "probesim"]

    def test_unknown_default_rejected(self, toy):
        with pytest.raises(ConfigurationError):
            SimRankService(toy.copy(), methods=("probesim",), default_method="sling")

    def test_config_for_unmounted_method_rejected(self, toy):
        with pytest.raises(ConfigurationError):
            SimRankService(toy.copy(), methods=("probesim",),
                           configs={"tsf": {"rg": 5}})

    def test_alias_mounts_method_twice(self, toy):
        service = SimRankService(toy.copy(), methods=())
        service.add_method("probesim", alias="fast", eps_a=0.3, num_walks=30, seed=1)
        service.add_method("probesim", alias="accurate", eps_a=0.1, seed=1)
        assert service.methods == ["accurate", "fast"]
        assert service.single_source(0, method="fast").num_walks == 30

    def test_duplicate_mount_rejected(self, toy):
        service = make_service(toy.copy())
        with pytest.raises(ConfigurationError):
            service.add_method("probesim")

    def test_unknown_method_lookup(self, toy):
        service = make_service(toy.copy())
        with pytest.raises(ConfigurationError, match="no method"):
            service.single_source(0, method="sling")


class TestQueries:
    def test_single_and_topk(self, toy):
        service = make_service(toy.copy())
        assert service.single_source(0).score(0) == 1.0
        top = service.topk(0, 3, method="power")
        assert top.k == 3
        assert service.stats.queries == 2

    def test_batch_deduplicates(self, toy):
        service = make_service(toy.copy())
        queries = [0, 3, 0, 5, 3, 0]
        results = service.single_source_many(queries)
        assert [r.query for r in results] == queries
        # duplicates share the first occurrence's answer (one sampling round)
        np.testing.assert_array_equal(results[0].scores, results[2].scores)
        np.testing.assert_array_equal(results[1].scores, results[4].scores)
        assert service.stats.batched_queries == 6
        assert service.stats.batched_unique == 3
        assert service.stats.batch_dedup_saved == 3

    def test_topk_many(self, toy):
        service = make_service(toy.copy())
        tops = service.topk_many([0, 1, 0], k=2, method="power")
        assert [t.query for t in tops] == [0, 1, 0]
        assert all(t.k == 2 for t in tops)
        with pytest.raises(QueryError):
            service.topk_many([0], k=0)

    def test_bad_query_type_rejected(self, toy):
        service = make_service(toy.copy())
        with pytest.raises(QueryError):
            service.single_source_many(["a"])


class TestUpdates:
    def test_apply_edges_mutates_graph_and_syncs(self, toy):
        graph = toy.copy()
        service = make_service(graph)
        exact_before = service.single_source(5, method="power").scores.copy()
        applied = service.apply_edges(added=[(0, 5)])
        assert applied == 1
        assert graph.has_edge(0, 5)
        assert service.stats.updates_applied == 1
        assert service.stats.syncs == 2  # both mounted methods are bulk-sync
        exact_after = service.single_source(5, method="power").scores
        assert not np.array_equal(exact_before, exact_after)

    def test_deferred_sync(self, toy):
        graph = toy.copy()
        service = make_service(graph, auto_sync=False)
        service.apply_edges(added=[(0, 5)])
        assert service.stats.syncs == 0  # deferred
        # the power method's cached matrix is stale until sync()
        stale = service.single_source(5, method="power").scores.copy()
        service.sync()
        assert service.stats.syncs == 2
        fresh = service.single_source(5, method="power").scores
        assert not np.array_equal(stale, fresh)

    def test_incremental_methods_notified_per_update(self, toy):
        graph = toy.copy()
        service = SimRankService(
            graph,
            methods=("tsf", "probesim"),
            configs={
                "tsf": {"rg": 10, "rq": 2, "depth": 4, "seed": 3},
                "probesim": {"eps_a": 0.3, "num_walks": 30, "seed": 3},
            },
        )
        stream = generate_update_stream(graph, 4, seed=5)
        applied = service.apply_update_stream(stream)
        assert applied == 4
        # tsf is incremental: notified once per update; probesim bulk-synced
        assert service.stats.incremental_notifications == 4
        assert service.stats.syncs == 1
        assert np.all(np.isfinite(service.single_source(0, method="tsf").scores))

    def test_frozen_graph_rejects_updates(self, toy):
        service = make_service(CSRGraph.from_digraph(toy))
        with pytest.raises(ConfigurationError, match="mutable"):
            service.apply_edges(added=[(0, 5)])

    def test_stats_row(self, toy):
        service = make_service(toy.copy())
        service.single_source(0)
        row = service.stats.as_row()
        assert row["queries"] == 1
        assert "dedup_saved" in row and "syncs" in row
