"""Tests for the batched, dynamic-graph SimRankService."""

import numpy as np
import pytest

from repro.api import Capabilities, SimRankService
from repro.api.estimator import SimRankEstimator
from repro.errors import (
    ConfigurationError,
    DuplicateEdgeError,
    EdgeNotFoundError,
    QueryError,
    ReproError,
)
from repro.graph import CSRGraph, EdgeUpdate
from repro.graph.dynamic import generate_update_stream


def make_service(graph, **kwargs):
    """A two-method service with cheap configs on the given graph."""
    defaults = dict(
        methods=("probesim", "power"),
        configs={"probesim": {"eps_a": 0.2, "seed": 11, "num_walks": 60}},
    )
    defaults.update(kwargs)
    return SimRankService(graph, **defaults)


class TestConstruction:
    def test_default_method_is_first(self, toy):
        service = make_service(toy.copy())
        assert service.estimator() is service.estimator("probesim")
        assert service.methods == ["power", "probesim"]

    def test_unknown_default_rejected(self, toy):
        with pytest.raises(ConfigurationError):
            SimRankService(toy.copy(), methods=("probesim",), default_method="sling")

    def test_config_for_unmounted_method_rejected(self, toy):
        with pytest.raises(ConfigurationError):
            SimRankService(toy.copy(), methods=("probesim",),
                           configs={"tsf": {"rg": 5}})

    def test_alias_mounts_method_twice(self, toy):
        service = SimRankService(toy.copy(), methods=())
        service.add_method("probesim", alias="fast", eps_a=0.3, num_walks=30, seed=1)
        service.add_method("probesim", alias="accurate", eps_a=0.1, seed=1)
        assert service.methods == ["accurate", "fast"]
        assert service.single_source(0, method="fast").num_walks == 30

    def test_duplicate_mount_rejected(self, toy):
        service = make_service(toy.copy())
        with pytest.raises(ConfigurationError):
            service.add_method("probesim")

    def test_unknown_method_lookup(self, toy):
        service = make_service(toy.copy())
        with pytest.raises(ConfigurationError, match="no method"):
            service.single_source(0, method="sling")


class TestQueries:
    def test_single_and_topk(self, toy):
        service = make_service(toy.copy())
        assert service.single_source(0).score(0) == 1.0
        top = service.topk(0, 3, method="power")
        assert top.k == 3
        assert service.stats.queries == 2

    def test_batch_deduplicates(self, toy):
        service = make_service(toy.copy())
        queries = [0, 3, 0, 5, 3, 0]
        results = service.single_source_many(queries)
        assert [r.query for r in results] == queries
        # duplicates share the first occurrence's answer (one sampling round)
        np.testing.assert_array_equal(results[0].scores, results[2].scores)
        np.testing.assert_array_equal(results[1].scores, results[4].scores)
        assert service.stats.batched_queries == 6
        assert service.stats.batched_unique == 3
        assert service.stats.batch_dedup_saved == 3

    def test_topk_many(self, toy):
        service = make_service(toy.copy())
        tops = service.topk_many([0, 1, 0], k=2, method="power")
        assert [t.query for t in tops] == [0, 1, 0]
        assert all(t.k == 2 for t in tops)
        with pytest.raises(QueryError):
            service.topk_many([0], k=0)

    def test_bad_query_type_rejected(self, toy):
        service = make_service(toy.copy())
        with pytest.raises(QueryError):
            service.single_source_many(["a"])


class TestUpdates:
    def test_apply_edges_mutates_graph_and_syncs(self, toy):
        graph = toy.copy()
        service = make_service(graph)
        exact_before = service.single_source(5, method="power").scores.copy()
        applied = service.apply_edges(added=[(0, 5)])
        assert applied == 1
        assert graph.has_edge(0, 5)
        assert service.stats.updates_applied == 1
        assert service.stats.syncs == 2  # both mounted methods are bulk-sync
        exact_after = service.single_source(5, method="power").scores
        assert not np.array_equal(exact_before, exact_after)

    def test_deferred_sync(self, toy):
        graph = toy.copy()
        service = make_service(graph, auto_sync=False)
        service.apply_edges(added=[(0, 5)])
        assert service.stats.syncs == 0  # deferred
        # the power method's cached matrix is stale until sync()
        stale = service.single_source(5, method="power").scores.copy()
        service.sync()
        assert service.stats.syncs == 2
        fresh = service.single_source(5, method="power").scores
        assert not np.array_equal(stale, fresh)

    def test_incremental_methods_notified_per_update(self, toy):
        graph = toy.copy()
        service = SimRankService(
            graph,
            methods=("tsf", "probesim"),
            configs={
                "tsf": {"rg": 10, "rq": 2, "depth": 4, "seed": 3},
                "probesim": {"eps_a": 0.3, "num_walks": 30, "seed": 3},
            },
        )
        stream = generate_update_stream(graph, 4, seed=5)
        applied = service.apply_update_stream(stream)
        assert applied == 4
        # tsf is incremental: notified once per update; probesim bulk-synced
        assert service.stats.incremental_notifications == 4
        assert service.stats.syncs == 1
        assert np.all(np.isfinite(service.single_source(0, method="tsf").scores))

    def test_frozen_graph_rejects_updates(self, toy):
        service = make_service(CSRGraph.from_digraph(toy))
        with pytest.raises(ConfigurationError, match="mutable"):
            service.apply_edges(added=[(0, 5)])

    def test_stats_row(self, toy):
        service = make_service(toy.copy())
        service.single_source(0)
        row = service.stats.as_row()
        assert row["queries"] == 1
        assert "dedup_saved" in row and "syncs" in row

    def test_maintenance_time_charged_per_method(self, toy):
        service = make_service(toy.copy())
        service.apply_edges(added=[(0, 5)])
        charged = service.stats.maintenance_seconds
        assert set(charged) == {"power", "probesim"}
        assert all(seconds >= 0 for seconds in charged.values())
        assert service.stats.total_maintenance_seconds == pytest.approx(
            sum(charged.values())
        )


class _ExplodingEstimator(SimRankEstimator):
    """Incremental estimator that raises on its Nth update notification."""

    def __init__(self, graph, explode_at=3):
        self.graph = graph
        self.explode_at = explode_at
        self.notified = 0

    def single_source(self, query):
        raise NotImplementedError  # never queried in these tests

    def sync(self):
        """No state to rebuild."""

    def capabilities(self):
        """Advertises incremental updates so the service notifies per op."""
        return Capabilities(
            method="exploding", exact=False, index_based=True,
            supports_dynamic=True, incremental_updates=True,
        )

    def apply_updates(self, updates):
        """Blow up on the configured notification."""
        for _ in updates:
            self.notified += 1
            if self.notified >= self.explode_at:
                raise RuntimeError("index corrupted")


class TestUpdateStreamEdgeCases:
    def test_empty_stream_applies_nothing_and_skips_sync(self, toy):
        service = make_service(toy.copy())
        assert service.apply_update_stream([]) == 0
        assert service.stats.updates_applied == 0
        assert service.stats.syncs == 0

    def test_duplicate_insert_rejected_graph_and_stats_consistent(self, toy):
        graph = toy.copy()
        service = make_service(graph)
        existing = next(iter(graph.edges()))
        before_edges = graph.num_edges
        with pytest.raises(DuplicateEdgeError):
            service.apply_edges(added=[existing])
        assert graph.num_edges == before_edges
        assert service.stats.updates_applied == 0
        # nothing was applied, so nothing is stale and nothing syncs
        assert service.stats.syncs == 0
        assert np.isfinite(service.single_source(0).scores).all()

    def test_delete_of_missing_edge_rejected_consistently(self, toy):
        graph = toy.copy()
        service = make_service(graph)
        with pytest.raises(EdgeNotFoundError):
            service.apply_edges(removed=[(0, 7)])
        assert service.stats.updates_applied == 0
        assert service.stats.syncs == 0

    def test_partial_stream_failure_still_syncs_applied_prefix(self, toy):
        """An invalid op mid-stream: the valid prefix stays applied AND the
        bulk estimators are synced over it (never silently stale)."""
        graph = toy.copy()
        service = make_service(graph)
        updates = [
            EdgeUpdate("insert", 0, 5),
            EdgeUpdate("delete", 0, 7),  # invalid: not an edge
            EdgeUpdate("insert", 1, 6),
        ]
        with pytest.raises(EdgeNotFoundError):
            service.apply_update_stream(updates)
        assert graph.has_edge(0, 5)
        assert not graph.has_edge(1, 6)
        assert service.stats.updates_applied == 1
        assert service.stats.syncs == 2  # both bulk methods synced the prefix
        # the exact method answers against the post-prefix graph
        assert np.isfinite(service.single_source(5, method="power").scores).all()

    def test_mid_stream_estimator_failure_graph_and_stats_consistent(self, toy):
        """An estimator raising during notification must not desync the
        service: applied updates are counted, bulk methods get synced, and
        the graph keeps every mutation that happened before the failure."""
        graph = toy.copy()
        service = make_service(graph)
        exploding = _ExplodingEstimator(graph, explode_at=2)
        service._estimators["exploding"] = exploding  # mount the stub directly
        stream = generate_update_stream(graph, 4, seed=5)
        with pytest.raises(RuntimeError, match="index corrupted"):
            service.apply_update_stream(stream)
        # updates 1 and 2 mutated the graph; the failure happened *after*
        # the second mutation, during notification
        assert service.stats.updates_applied == 2
        assert exploding.notified == 2
        # bulk estimators were synced over the applied prefix (finally path)
        assert service.stats.syncs == 2
        assert not service._stale
        # the service still answers queries against the current graph
        assert np.isfinite(service.single_source(0).scores).all()
        assert service.single_source(0, method="power").score(0) == 1.0

    def test_failure_with_deferred_sync_marks_stale(self, toy):
        graph = toy.copy()
        service = make_service(graph, auto_sync=False)
        exploding = _ExplodingEstimator(graph, explode_at=1)
        service._estimators["exploding"] = exploding
        stream = generate_update_stream(graph, 3, seed=6)
        with pytest.raises(RuntimeError):
            service.apply_update_stream(stream)
        assert service.stats.updates_applied == 1
        # the applied prefix left bulk estimators stale; an explicit sync heals
        assert service._stale == {"power", "probesim"}
        service.sync()
        assert service.stats.syncs == 2
        assert not service._stale

    def test_library_errors_derive_from_repro_error(self):
        assert issubclass(DuplicateEdgeError, ReproError)
        assert issubclass(EdgeNotFoundError, ReproError)


class _CountingEstimator(SimRankEstimator):
    """Instant, stateless estimator so the stress test is all lock traffic."""

    def __init__(self, graph):
        self.graph = graph

    def single_source(self, query):
        from repro.core.results import SimRankResult

        return SimRankResult(
            query=query, scores=np.zeros(self.graph.num_nodes),
            num_walks=0, elapsed=0.0, method="counting",
        )

    def sync(self):
        """Nothing to rebuild."""

    def capabilities(self):
        return Capabilities(
            method="counting", exact=False, index_based=False,
            supports_dynamic=True, incremental_updates=True,
        )

    def apply_updates(self, updates):
        """Incremental no-op: accept the notification instantly."""


class TestConcurrentMaintenanceStats:
    def test_counters_exact_under_query_update_overlap(self, toy):
        """Regression: apply_update_stream/sync used to bump the shared
        counters (updates_applied, incremental_notifications, syncs,
        charge_maintenance, _stale) without the stats lock, racing the
        lock-guarded query counters when replica threads overlap the
        maintenance thread.  With every path locked, all final counts are
        exact — lost increments here mean the lock was dropped again."""
        import threading

        graph = toy.copy()
        service = SimRankService(graph, methods=())
        service._estimators["counting"] = _CountingEstimator(graph)
        service._default = "counting"
        queries_per_thread, threads = 300, 4
        rounds, updates_per_round = 25, 2
        barrier = threading.Barrier(threads + 1)

        def query_loop():
            barrier.wait()
            for index in range(queries_per_thread):
                service.single_source(index % graph.num_nodes)

        workers = [threading.Thread(target=query_loop) for _ in range(threads)]
        for worker in workers:
            worker.start()
        barrier.wait()
        edge = (0, 5)
        for _ in range(rounds):
            # insert+delete per round: applies cleanly no matter the round
            service.apply_edges(added=[edge])
            service.apply_edges(removed=[edge])
        for worker in workers:
            worker.join()

        assert service.stats.queries == threads * queries_per_thread
        assert service.stats.updates_applied == rounds * updates_per_round
        assert (
            service.stats.incremental_notifications == rounds * updates_per_round
        )
        assert service.stats.syncs == 0  # the only mount is incremental
        assert not service._stale


class TestContextManager:
    def test_with_block_closes_and_returns_service(self, toy):
        with SimRankService(toy, methods=("probesim",),
                            configs={"probesim": {"eps_a": 0.2, "seed": 7}}) as service:
            assert service.single_source(0).score(0) == 1.0
        service.close()  # idempotent after __exit__

    def test_close_is_a_noop_for_in_process_service(self, toy):
        service = SimRankService(toy, methods=("probesim",),
                                 configs={"probesim": {"eps_a": 0.2, "seed": 7}})
        service.close()
        # the in-process service holds no pool: still queryable after close()
        assert service.single_source(0).score(0) == 1.0
