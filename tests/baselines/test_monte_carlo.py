"""Tests for the Monte Carlo √c-walk estimator."""

import numpy as np
import pytest

from repro.baselines.monte_carlo import MonteCarlo, pair_sample_size
from repro.datasets import TOY_DECAY
from repro.datasets.toy import node_id
from repro.errors import ConfigurationError, QueryError


class TestPairSampleSize:
    def test_formula(self):
        import math

        assert pair_sample_size(0.1, 0.01) == math.ceil(math.log(100) / 0.02)

    def test_monotone(self):
        assert pair_sample_size(0.01, 0.01) > pair_sample_size(0.1, 0.01)
        assert pair_sample_size(0.1, 0.001) > pair_sample_size(0.1, 0.1)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            pair_sample_size(0.0, 0.1)
        with pytest.raises(ConfigurationError):
            pair_sample_size(0.1, 1.0)


class TestSinglePair:
    def test_identical_nodes(self, toy):
        assert MonteCarlo(toy, c=TOY_DECAY, seed=1).single_pair(2, 2, 10) == 1.0

    @pytest.mark.parametrize("pair", [("a", "d"), ("a", "c"), ("a", "e")])
    def test_matches_ground_truth(self, toy, toy_truth, pair):
        mc = MonteCarlo(toy, c=TOY_DECAY, seed=7)
        u, v = node_id(pair[0]), node_id(pair[1])
        estimate = mc.single_pair(u, v, 60_000)
        assert estimate == pytest.approx(toy_truth.pair(u, v), abs=0.01)

    def test_zero_similarity_pair(self):
        from repro.graph import DiGraph

        # two disconnected 2-cycles never meet
        g = DiGraph.from_edges([(0, 1), (1, 0), (2, 3), (3, 2)])
        mc = MonteCarlo(g, c=0.6, seed=2)
        assert mc.single_pair(0, 2, 5000) == 0.0

    def test_pair_with_guarantee_uses_budget(self, toy, toy_truth):
        mc = MonteCarlo(toy, c=TOY_DECAY, seed=3)
        estimate = mc.pair_with_guarantee(0, 3, eps=0.02, delta=0.01)
        assert estimate == pytest.approx(toy_truth.pair(0, 3), abs=0.02)

    def test_block_splitting_consistent(self, toy, toy_truth):
        """Sample counts above the block size must still be unbiased."""
        mc = MonteCarlo(toy, c=TOY_DECAY, seed=4)
        estimate = mc.single_pair(0, 3, 70_000)  # > one 65536 block
        assert estimate == pytest.approx(toy_truth.pair(0, 3), abs=0.01)

    def test_validation(self, toy):
        mc = MonteCarlo(toy, c=TOY_DECAY, seed=1)
        with pytest.raises(QueryError):
            mc.single_pair(0, 99, 10)
        with pytest.raises(ConfigurationError):
            mc.single_pair(0, 1, 0)


class TestSingleSource:
    def test_matches_ground_truth_on_toy(self, toy, toy_truth):
        mc = MonteCarlo(toy, c=TOY_DECAY, seed=11)
        result = mc.single_source(0, num_walks=30_000)
        truth = toy_truth.single_source(0)
        for v in range(1, 8):
            assert result.scores[v] == pytest.approx(truth[v], abs=0.012)

    def test_matches_ground_truth_on_tiny_wiki(self, tiny_wiki, tiny_wiki_truth):
        mc = MonteCarlo(tiny_wiki, c=0.6, seed=12)
        result = mc.single_source(10, num_walks=1200)
        truth = tiny_wiki_truth.single_source(10)
        errors = np.abs(result.scores - truth)
        errors[10] = 0.0
        assert errors.max() < 0.06

    def test_result_shape(self, toy):
        result = MonteCarlo(toy, c=TOY_DECAY, seed=1).single_source(2, num_walks=50)
        assert result.method == "mc"
        assert result.num_walks == 50
        assert result.score(2) == 1.0
        assert result.scores.min() >= 0.0
        assert result.scores.max() <= 1.0

    def test_deterministic_given_seed(self, toy):
        a = MonteCarlo(toy, c=TOY_DECAY, seed=9).single_source(0, num_walks=200)
        b = MonteCarlo(toy, c=TOY_DECAY, seed=9).single_source(0, num_walks=200)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_validation(self, toy):
        mc = MonteCarlo(toy, c=TOY_DECAY, seed=1)
        with pytest.raises(QueryError):
            mc.single_source(99, num_walks=10)
        with pytest.raises(ConfigurationError):
            mc.single_source(0, num_walks=-5)

    def test_repr(self, toy):
        assert "MonteCarlo" in repr(MonteCarlo(toy, seed=1))
