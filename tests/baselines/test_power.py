"""Tests for the Power Method (exact SimRank, Eq. 10)."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.power import PowerMethod
from repro.datasets import TOY_DECAY, TOY_EXPECTED_SIMRANK_FROM_A, TOY_NODE_NAMES
from repro.datasets.toy import TOY_TABLE2_TOLERANCE
from repro.errors import ConfigurationError, QueryError
from repro.graph import DiGraph


class TestTable2:
    def test_reproduces_paper_table2(self, toy):
        """Table 2: s(a, *) at c = 0.25, to the table's printed precision."""
        S = PowerMethod(toy, c=TOY_DECAY).compute(iterations=60)
        for name, expected in TOY_EXPECTED_SIMRANK_FROM_A.items():
            got = float(S[0, TOY_NODE_NAMES.index(name)])
            assert got == pytest.approx(expected, abs=TOY_TABLE2_TOLERANCE), name


class TestFixedPointProperties:
    def test_satisfies_simrank_recursion(self, toy):
        """The converged matrix must satisfy Eq. 1 entrywise."""
        S = PowerMethod(toy, c=TOY_DECAY).compute(iterations=80)
        n = toy.num_nodes
        for u in range(n):
            for v in range(n):
                if u == v:
                    assert S[u, v] == 1.0
                    continue
                in_u, in_v = toy.in_neighbors(u), toy.in_neighbors(v)
                if not in_u or not in_v:
                    assert S[u, v] == 0.0
                    continue
                rhs = TOY_DECAY / (len(in_u) * len(in_v)) * sum(
                    S[x, y] for x in in_u for y in in_v
                )
                assert S[u, v] == pytest.approx(rhs, abs=1e-10)

    def test_symmetric(self, toy):
        S = PowerMethod(toy, c=0.6).compute(iterations=40)
        np.testing.assert_allclose(S, S.T, atol=1e-12)

    def test_range_and_diagonal(self, tiny_wiki):
        S = PowerMethod(tiny_wiki, c=0.6).compute(iterations=25)
        assert np.all(S >= 0.0)
        assert np.all(S <= 1.0 + 1e-12)
        np.testing.assert_array_equal(np.diag(S), np.ones(tiny_wiki.num_nodes))

    def test_zero_in_degree_rows_are_zero(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        S = PowerMethod(g, c=0.6).compute(iterations=30)
        # node 0 has no in-edges: similarity 0 with everything else
        assert S[0, 1] == 0.0
        assert S[0, 2] == 0.0

    def test_geometric_convergence(self, toy):
        pm = PowerMethod(toy, c=0.6)
        S10 = pm.compute(iterations=10).copy()
        S11 = PowerMethod(toy, c=0.6).compute(iterations=11)
        S40 = PowerMethod(toy, c=0.6).compute(iterations=40)
        # iteration error shrinks at least like c^t
        assert np.abs(S11 - S40).max() <= np.abs(S10 - S40).max() + 1e-15
        assert np.abs(S40 - PowerMethod(toy, c=0.6).compute(iterations=41)).max() < 1e-8


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx_simrank(self, seed):
        rng = np.random.default_rng(seed)
        n = 25
        edges = set()
        while len(edges) < 80:
            s, t = int(rng.integers(n)), int(rng.integers(n))
            if s != t:
                edges.add((s, t))
        g = DiGraph.from_edges(sorted(edges), num_nodes=n)
        S = PowerMethod(g, c=0.6).compute(iterations=80)
        G = nx.DiGraph(sorted(edges))
        G.add_nodes_from(range(n))
        nx_sim = nx.simrank_similarity(
            G, importance_factor=0.6, max_iterations=500, tolerance=1e-12
        )
        M = np.array([[nx_sim[u][v] for v in range(n)] for u in range(n)])
        np.testing.assert_allclose(S, M, atol=1e-6)


class TestInterface:
    def test_single_source_packaging(self, toy, toy_truth):
        result = PowerMethod(toy, c=TOY_DECAY).single_source(0)
        assert result.method == "power-method"
        np.testing.assert_allclose(result.scores, toy_truth.single_source(0), atol=1e-9)

    def test_pair(self, toy):
        pm = PowerMethod(toy, c=TOY_DECAY)
        assert pm.pair(0, 0) == 1.0
        assert pm.pair(0, 3) == pytest.approx(0.131, abs=5e-4)

    def test_matrix_cached(self, toy):
        pm = PowerMethod(toy, c=0.6)
        assert pm.matrix() is pm.matrix()

    def test_tol_early_exit(self, toy):
        pm = PowerMethod(toy, c=0.6)
        pm.compute(iterations=500, tol=1e-10)
        assert pm.num_iterations < 500

    def test_query_out_of_range(self, toy):
        with pytest.raises(QueryError):
            PowerMethod(toy).single_source(50)

    def test_size_cap(self):
        big = DiGraph(30_000)
        with pytest.raises(ConfigurationError):
            PowerMethod(big)

    def test_invalid_iterations(self, toy):
        with pytest.raises(ConfigurationError):
            PowerMethod(toy).compute(iterations=0)
