"""Tests for the SLING index (last-meeting decomposition)."""

import numpy as np
import pytest

from repro.baselines.sling import SLINGIndex
from repro.datasets import TOY_DECAY
from repro.errors import ConfigurationError, QueryError
from repro.eval.metrics import abs_error_max
from repro.graph import DiGraph


class TestExactMode:
    def test_machine_precision_on_toy(self, toy, toy_truth):
        """With theta = 0 and exact d, the last-meeting decomposition equals
        SimRank to numerical precision — the identity the index rests on."""
        index = SLINGIndex(toy, c=TOY_DECAY, theta=0.0, depth=100, d_mode="exact")
        for query in range(toy.num_nodes):
            result = index.single_source(query)
            truth = toy_truth.single_source(query)
            assert abs_error_max(result.scores, truth, query) < 1e-9

    def test_exact_on_tiny_wiki(self, tiny_wiki, tiny_wiki_truth):
        index = SLINGIndex(tiny_wiki, c=0.6, theta=0.0, depth=60, d_mode="exact")
        for query in (10, 50):
            result = index.single_source(query)
            err = abs_error_max(result.scores, tiny_wiki_truth.single_source(query), query)
            assert err < 1e-6

    def test_d_values_are_probabilities(self, toy):
        index = SLINGIndex(toy, c=TOY_DECAY, theta=0.0, depth=100, d_mode="exact")
        assert np.all(index.d > 0.0)
        assert np.all(index.d <= 1.0 + 1e-9)

    def test_d_is_one_for_unreachable_nodes(self):
        # a node whose in-neighbourhood is a single chain: two walks from it
        # always move together... build instead a node with no in-edges
        # reachable: walks from a source with in-degree 0 stop immediately,
        # so they never meet again: d = 1.
        g = DiGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        index = SLINGIndex(g, c=0.6, theta=0.0, depth=60, d_mode="exact")
        assert index.d[0] == pytest.approx(1.0)


class TestMonteCarloMode:
    def test_d_estimates_close_to_exact(self, toy):
        exact = SLINGIndex(toy, c=TOY_DECAY, theta=0.0, depth=80, d_mode="exact")
        mc = SLINGIndex(
            toy, c=TOY_DECAY, theta=0.0, depth=80, d_mode="monte_carlo",
            d_samples=20_000, seed=3,
        )
        np.testing.assert_allclose(mc.d, exact.d, atol=0.015)

    def test_queries_accurate_with_mc_d(self, toy, toy_truth):
        index = SLINGIndex(
            toy, c=TOY_DECAY, theta=1e-5, d_mode="monte_carlo",
            d_samples=20_000, seed=4,
        )
        result = index.single_source(0)
        assert abs_error_max(result.scores, toy_truth.single_source(0), 0) < 0.02

    def test_deterministic_given_seed(self, toy):
        a = SLINGIndex(toy, c=TOY_DECAY, d_mode="monte_carlo", d_samples=500, seed=5)
        b = SLINGIndex(toy, c=TOY_DECAY, d_mode="monte_carlo", d_samples=500, seed=5)
        np.testing.assert_array_equal(a.d, b.d)


class TestSparsification:
    def test_theta_trades_size_for_error(self, tiny_wiki, tiny_wiki_truth):
        tight = SLINGIndex(tiny_wiki, c=0.6, theta=1e-6, d_mode="exact")
        loose = SLINGIndex(tiny_wiki, c=0.6, theta=1e-2, d_mode="exact")
        assert loose.index_nnz() < tight.index_nnz()
        assert loose.index_bytes() < tight.index_bytes()
        err_tight = abs_error_max(
            tight.single_source(10).scores, tiny_wiki_truth.single_source(10), 10
        )
        err_loose = abs_error_max(
            loose.single_source(10).scores, tiny_wiki_truth.single_source(10), 10
        )
        assert err_tight <= err_loose + 1e-9
        assert err_tight < 0.01

    def test_depth_derived_from_theta(self, toy):
        shallow = SLINGIndex(toy, c=0.6, theta=0.05, d_mode="exact")
        deep = SLINGIndex(toy, c=0.6, theta=1e-6, d_mode="exact")
        assert deep.depth > shallow.depth


class TestInterface:
    def test_result_shape(self, toy):
        index = SLINGIndex(toy, c=TOY_DECAY, d_mode="exact")
        result = index.single_source(2)
        assert result.method == "sling"
        assert result.score(2) == 1.0
        assert result.scores.min() >= 0.0

    def test_topk_matches_truth_on_toy(self, toy, toy_truth):
        index = SLINGIndex(toy, c=TOY_DECAY, theta=0.0, depth=80, d_mode="exact")
        assert index.topk(0, 1).nodes[0] == int(toy_truth.topk_nodes(0, 1)[0])

    def test_build_time_recorded(self, toy):
        assert SLINGIndex(toy, c=0.6, d_mode="exact").build_time > 0.0

    def test_rebuild_tracks_graph(self, toy, toy_truth):
        graph = toy.copy()
        index = SLINGIndex(graph, c=TOY_DECAY, theta=0.0, depth=80, d_mode="exact")
        graph.remove_edge(4, 1)
        index.sync()
        from repro.eval.ground_truth import compute_ground_truth

        truth = compute_ground_truth(graph, c=TOY_DECAY, iterations=80)
        result = index.single_source(0)
        assert abs_error_max(result.scores, truth.single_source(0), 0) < 1e-9

    def test_validation(self, toy):
        with pytest.raises(ConfigurationError):
            SLINGIndex(toy, theta=1.5)
        with pytest.raises(ConfigurationError):
            SLINGIndex(toy, d_mode="guess")
        with pytest.raises(ConfigurationError):
            SLINGIndex(toy, d_samples=0)
        with pytest.raises(QueryError):
            SLINGIndex(toy, d_mode="exact").single_source(99)

    def test_exact_mode_size_cap(self):
        big = DiGraph.from_edges([(0, 1)], num_nodes=6000)
        with pytest.raises(ConfigurationError):
            SLINGIndex(big, d_mode="exact")

    def test_repr(self, toy):
        assert "SLINGIndex" in repr(SLINGIndex(toy, d_mode="exact"))
