"""Tests for the TopSim family.

TopSim-SM's estimate must equal truncated SimRank: by its construction from
the √c-walk decomposition, s_T(u, v) approaches s(u, v) as T grows, and the
truncation error is bounded by the tail mass sum_{i > T} (sqrt c)^i.
"""

import numpy as np
import pytest

from repro.baselines.topsim import TopSim
from repro.datasets import TOY_DECAY
from repro.errors import ConfigurationError, QueryError
from repro.eval.metrics import abs_error_max


class TestFullVariant:
    def test_converges_to_ground_truth_with_depth(self, toy, toy_truth):
        errors = []
        for depth in (1, 2, 4, 8):
            result = TopSim(toy, c=TOY_DECAY, depth=depth).single_source(0)
            errors.append(abs_error_max(result.scores, toy_truth.single_source(0), 0))
        assert errors == sorted(errors, reverse=True)  # monotone improvement
        assert errors[-1] < 1e-3

    def test_depth8_nearly_exact_on_toy(self, toy, toy_truth):
        for query in range(4):
            result = TopSim(toy, c=TOY_DECAY, depth=8).single_source(query)
            err = abs_error_max(result.scores, toy_truth.single_source(query), query)
            assert err < 2e-3

    def test_truncation_tail_bound(self, toy, toy_truth):
        """Error at depth T is at most the walk tail mass sum_{i>T}(sqrt c)^i."""
        sqrt_c = np.sqrt(TOY_DECAY)
        for depth in (2, 3):
            result = TopSim(toy, c=TOY_DECAY, depth=depth).single_source(0)
            err = abs_error_max(result.scores, toy_truth.single_source(0), 0)
            tail = sqrt_c ** (depth + 1) / (1 - sqrt_c)
            assert err <= tail + 1e-12

    def test_underestimates_truth(self, toy, toy_truth):
        """Dropping the tail makes s_T a one-sided underestimate."""
        result = TopSim(toy, c=TOY_DECAY, depth=3).single_source(0)
        truth = toy_truth.single_source(0)
        assert np.all(result.scores <= truth + 1e-9)

    def test_deterministic(self, tiny_wiki):
        a = TopSim(tiny_wiki, depth=3).single_source(10)
        b = TopSim(tiny_wiki, depth=3).single_source(10)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_tiny_wiki_accuracy(self, tiny_wiki, tiny_wiki_truth):
        result = TopSim(tiny_wiki, c=0.6, depth=3).single_source(10)
        err = abs_error_max(result.scores, tiny_wiki_truth.single_source(10), 10)
        assert err < 0.6**3 / (1 - np.sqrt(0.6)) + 1e-9


class TestHeuristicVariants:
    def test_truncated_never_more_accurate_estimates(self, tiny_wiki):
        """Trun- prunes probability mass, so its scores are dominated by
        TopSim-SM's scores (both underestimate; Trun- drops more)."""
        full = TopSim(tiny_wiki, depth=3).single_source(10)
        trun = TopSim(
            tiny_wiki, depth=3, variant="truncated", degree_threshold=10, eta=0.01
        ).single_source(10)
        assert np.all(trun.scores <= full.scores + 1e-12)

    def test_prioritized_subset_of_full(self, tiny_wiki):
        full = TopSim(tiny_wiki, depth=3).single_source(10)
        prio = TopSim(
            tiny_wiki, depth=3, variant="prioritized", priority_width=5
        ).single_source(10)
        assert np.all(prio.scores <= full.scores + 1e-12)

    def test_wide_priority_equals_full(self, toy):
        """With H larger than any level, Prio- degenerates to TopSim-SM."""
        full = TopSim(toy, c=TOY_DECAY, depth=3).single_source(0)
        prio = TopSim(
            toy, c=TOY_DECAY, depth=3, variant="prioritized", priority_width=10**6
        ).single_source(0)
        np.testing.assert_allclose(prio.scores, full.scores, atol=1e-12)

    def test_lenient_truncation_equals_full(self, toy):
        full = TopSim(toy, c=TOY_DECAY, depth=3).single_source(0)
        trun = TopSim(
            toy, c=TOY_DECAY, depth=3, variant="truncated",
            degree_threshold=10**6, eta=0.0,
        ).single_source(0)
        np.testing.assert_allclose(trun.scores, full.scores, atol=1e-12)

    def test_method_names(self, toy):
        assert TopSim(toy).method_name == "topsim-sm"
        assert TopSim(toy, variant="truncated").method_name == "trun-topsim-sm"
        assert TopSim(toy, variant="prioritized").method_name == "prio-topsim-sm"


class TestPrefixEnumeration:
    def test_prefix_probabilities_sum_bounded(self, toy):
        """Probabilities of depth-i prefixes sum to at most (sqrt c)^i."""
        topsim = TopSim(toy, c=TOY_DECAY, depth=4)
        by_depth: dict[int, float] = {}
        for prefix, prob in topsim.enumerate_prefixes(0):
            by_depth.setdefault(len(prefix) - 1, 0.0)
            by_depth[len(prefix) - 1] += prob
        sqrt_c = np.sqrt(TOY_DECAY)
        for depth, mass in by_depth.items():
            assert mass <= sqrt_c**depth + 1e-12

    def test_prefixes_follow_in_edges(self, toy):
        topsim = TopSim(toy, c=TOY_DECAY, depth=3)
        for prefix, _ in topsim.enumerate_prefixes(0):
            for current, nxt in zip(prefix, prefix[1:]):
                assert nxt in toy.in_neighbors(current)

    def test_source_node_yields_no_prefixes(self):
        from repro.graph import DiGraph

        g = DiGraph.from_edges([(0, 1)])  # node 0 has no in-edges
        assert TopSim(g, depth=3).enumerate_prefixes(0) == []


class TestValidation:
    def test_unknown_variant(self, toy):
        with pytest.raises(ConfigurationError):
            TopSim(toy, variant="magic")

    def test_invalid_eta(self, toy):
        with pytest.raises(ConfigurationError):
            TopSim(toy, eta=1.5)

    def test_invalid_depth(self, toy):
        with pytest.raises(ConfigurationError):
            TopSim(toy, depth=0)

    def test_query_out_of_range(self, toy):
        with pytest.raises(QueryError):
            TopSim(toy).single_source(99)

    def test_topk_shape(self, toy):
        top = TopSim(toy, c=TOY_DECAY, depth=4).topk(0, 3)
        assert top.k == 3
        assert top.nodes[0] == 3  # d is a's most similar node (Table 2)

    def test_repr(self, toy):
        assert "TopSim" in repr(TopSim(toy))
