"""Tests for the TSF one-way-graph index."""

import numpy as np
import pytest

from repro.baselines.tsf import TSFIndex
from repro.datasets import TOY_DECAY
from repro.errors import QueryError
from repro.graph import DiGraph, EdgeUpdate


class TestBuild:
    def test_one_way_graphs_sample_in_neighbors(self, toy):
        index = TSFIndex(toy, rg=20, rq=2, seed=1)
        for g in index._one_way:
            for node in range(toy.num_nodes):
                parent = int(g[node])
                if toy.in_degree(node) == 0:
                    assert parent == -1
                else:
                    assert parent in toy.in_neighbors(node)

    def test_reverse_adjacency_consistent(self, toy):
        index = TSFIndex(toy, rg=5, rq=1, seed=2)
        for i in range(index.rg):
            indptr, indices = index._reverse_adjacency(i)
            g = index._one_way[i]
            for parent in range(toy.num_nodes):
                children = set(indices[indptr[parent] : indptr[parent + 1]].tolist())
                expected = {v for v in range(toy.num_nodes) if g[v] == parent}
                assert children == expected

    def test_build_time_recorded(self, toy):
        index = TSFIndex(toy, rg=5, rq=1, seed=3)
        assert index.build_time >= 0.0

    def test_deterministic_given_seed(self, toy):
        a = TSFIndex(toy, rg=5, rq=1, seed=4)
        b = TSFIndex(toy, rg=5, rq=1, seed=4)
        for ga, gb in zip(a._one_way, b._one_way):
            np.testing.assert_array_equal(ga, gb)


class TestQuery:
    def test_estimates_correlate_with_truth(self, toy, toy_truth):
        index = TSFIndex(toy, c=TOY_DECAY, rg=200, rq=10, seed=5)
        result = index.single_source(0)
        truth = toy_truth.single_source(0)
        # TSF has no guarantee, but its ranking should broadly agree: d is
        # the clear top-1 for query a.
        assert result.topk(1).nodes[0] == 3

    def test_overestimation_bias(self, toy, toy_truth):
        """TSF sums meetings over all steps (not first meetings), so on
        average it over-estimates; with many samples the mean estimate for
        high-similarity pairs should not undershoot materially."""
        index = TSFIndex(toy, c=TOY_DECAY, rg=400, rq=10, seed=6)
        result = index.single_source(0)
        truth = toy_truth.single_source(0)
        strong = [v for v in range(1, 8) if truth[v] > 0.05]
        assert np.mean([result.scores[v] - truth[v] for v in strong]) > -0.01

    def test_result_shape(self, toy):
        index = TSFIndex(toy, rg=10, rq=2, seed=7)
        result = index.single_source(1)
        assert result.method == "tsf"
        assert result.score(1) == 1.0
        assert result.num_walks == 20

    def test_query_out_of_range(self, toy):
        with pytest.raises(QueryError):
            TSFIndex(toy, rg=2, rq=1, seed=1).single_source(50)

    def test_topk(self, toy):
        top = TSFIndex(toy, c=TOY_DECAY, rg=100, rq=5, seed=8).topk(0, 3)
        assert top.k == 3


class TestDynamicMaintenance:
    def test_insert_keeps_one_way_valid(self, toy):
        graph = toy.copy()
        index = TSFIndex(graph, rg=30, rq=2, seed=9)
        update = EdgeUpdate("insert", 5, 1)  # new in-neighbour f for b
        graph.add_edge(5, 1)
        index.apply_update(update)
        for g in index._one_way:
            assert int(g[1]) in graph.in_neighbors(1)

    def test_insert_adopts_new_edge_with_reservoir_rate(self, toy):
        """With in-degree d after insert, each one-way graph adopts the new
        parent with probability 1/d."""
        adopted = 0
        trials = 400
        graph = toy.copy()
        graph.add_edge(5, 1)  # b now has in-degree 3
        index = TSFIndex(graph, rg=trials, rq=1, seed=10)
        # rebuild from scratch samples uniformly: ~1/3 adoption
        for g in index._one_way:
            if int(g[1]) == 5:
                adopted += 1
        assert 0.25 * trials < adopted < 0.42 * trials

    def test_delete_resamples_stale_pointers(self, toy):
        graph = toy.copy()
        index = TSFIndex(graph, rg=50, rq=2, seed=11)
        # delete e -> b (node 4 -> 1)
        graph.remove_edge(4, 1)
        index.apply_update(EdgeUpdate("delete", 4, 1))
        for g in index._one_way:
            assert int(g[1]) != 4
            assert int(g[1]) in graph.in_neighbors(1)

    def test_delete_last_in_edge_clears_pointer(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        index = TSFIndex(graph, rg=10, rq=1, seed=12)
        graph.remove_edge(0, 1)
        index.apply_update(EdgeUpdate("delete", 0, 1))
        for g in index._one_way:
            assert int(g[1]) == -1

    def test_update_invalidates_reverse_adjacency(self, toy):
        graph = toy.copy()
        index = TSFIndex(graph, rg=5, rq=1, seed=13)
        index.materialize_reverse()
        graph.remove_edge(4, 1)
        index.apply_update(EdgeUpdate("delete", 4, 1))
        # any one-way graph that pointed b at e must have been invalidated
        # and must rebuild consistently on next access
        for i in range(index.rg):
            indptr, indices = index._reverse_adjacency(i)
            g = index._one_way[i]
            children_of_e = set(indices[indptr[4] : indptr[5]].tolist())
            assert children_of_e == {v for v in range(8) if g[v] == 4}

    def test_rebuild_resnapshots_graph(self, toy):
        graph = toy.copy()
        index = TSFIndex(graph, rg=10, rq=1, seed=14)
        graph.add_edge(7, 1)  # h -> b
        index.sync()
        # after a rebuild every sampled parent must be a *current* in-neighbour
        for g in index._one_way:
            assert int(g[1]) in graph.in_neighbors(1)


class TestSpaceAccounting:
    def test_index_bytes_scales_with_rg(self, toy):
        small = TSFIndex(toy, rg=5, rq=1, seed=15)
        large = TSFIndex(toy, rg=50, rq=1, seed=15)
        assert large.index_bytes() > 8 * small.index_bytes()

    def test_index_larger_than_graph_at_paper_params(self, tiny_wiki, tiny_wiki_csr):
        """Table 4's shape: TSF's index dwarfs the graph itself."""
        index = TSFIndex(tiny_wiki, rg=300, rq=2, seed=16)
        index.materialize_reverse()
        assert index.index_bytes() > 10 * tiny_wiki_csr.payload_bytes()

    def test_reverse_adds_bytes(self, toy):
        index = TSFIndex(toy, rg=5, rq=1, seed=17)
        before = index.index_bytes(include_reverse=True)
        index.materialize_reverse()
        assert index.index_bytes(include_reverse=True) > before
        assert index.index_bytes(include_reverse=False) < index.index_bytes()

    def test_repr(self, toy):
        assert "TSFIndex" in repr(TSFIndex(toy, rg=2, rq=1, seed=18))
