"""Shared fixtures: the paper's toy graph, tiny stand-in datasets, and their
exact ground truths (session-scoped — the Power Method runs once per graph)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import TOY_DECAY, load_dataset, toy_graph
from repro.eval.ground_truth import GroundTruth, compute_ground_truth
from repro.graph import CSRGraph, DiGraph


@pytest.fixture(scope="session")
def toy() -> DiGraph:
    return toy_graph()


@pytest.fixture(scope="session")
def toy_csr(toy) -> CSRGraph:
    return CSRGraph.from_digraph(toy)


@pytest.fixture(scope="session")
def toy_truth(toy) -> GroundTruth:
    """Exact SimRank on the toy graph at the paper's example decay c=0.25."""
    return compute_ground_truth(toy, c=TOY_DECAY, iterations=80)


@pytest.fixture(scope="session")
def toy_truth_c06(toy) -> GroundTruth:
    """Exact SimRank on the toy graph at the experiments' decay c=0.6."""
    return compute_ground_truth(toy, c=0.6, iterations=80)


@pytest.fixture(scope="session")
def tiny_wiki() -> DiGraph:
    """200-node locally-dense stand-in (deterministic)."""
    return load_dataset("wiki-vote", scale="tiny")


@pytest.fixture(scope="session")
def tiny_wiki_csr(tiny_wiki) -> CSRGraph:
    return CSRGraph.from_digraph(tiny_wiki)


@pytest.fixture(scope="session")
def tiny_wiki_truth(tiny_wiki) -> GroundTruth:
    return compute_ground_truth(tiny_wiki, c=0.6, iterations=40)


@pytest.fixture(scope="session")
def tiny_web() -> DiGraph:
    """600-node locally-sparse web stand-in (deterministic)."""
    return load_dataset("it-2004", scale="tiny")


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def diamond() -> DiGraph:
    """A tiny hand-analysable graph: 3 -> {1, 2} -> 0 plus 0 <-> 1 cycle.

    in-neighbours: I(0) = {1, 2}, I(1) = {0, 3}, I(2) = {3}, I(3) = {}.
    """
    return DiGraph.from_edges([(1, 0), (2, 0), (0, 1), (3, 1), (3, 2)])
