"""Golden-equivalence suite for the batched trie-sharing engine.

The batched engine reorders (never changes) the real-valued sums the loop
engine computes, so three tiers of agreement are pinned here:

1. **Exact integer artifacts** — fixed-seed walk sets and trie
   multiplicities are bit-identical across engines (both draw through
   :func:`~repro.core.walks.sample_walk_arrays` in the same RNG order).
2. **Node-for-node float agreement** — with pruning off, scores match the
   loop engine and the ``probe_deterministic_python`` oracle to float
   round-off on the toy graph and on generated graphs with dangling nodes
   and disconnected components.
3. **Bitwise-identical outputs** — on *dyadic* graphs (``c = 0.25`` so
   ``sqrt(c) = 0.5``, every in-degree a power of two, a power-of-two walk
   budget) every intermediate value is exactly representable, float
   addition is exact, and the two engines' fixed-seed outputs are
   bit-for-bit equal.  Batched ``single_source_many`` is bit-identical to
   looped ``single_source`` on *every* graph (forest columns never mix).

With pruning on, the engines intentionally diverge: the batched engine
skips Pruning rule 2 entirely (the dense level sweep has no per-probe work
for pruning to save, so skipping is strictly more accurate at identical
cost), so agreement is bounded by the loop engine's rule 2 error budget
instead — and the gap is one-sided.
"""

import numpy as np
import pytest

from repro.core.batch_engine import probe_trie_forest, probe_trie_shared
from repro.core.config import ProbeSimConfig
from repro.core.engine import ProbeSim, QueryStats
from repro.core.probe import probe_deterministic_python
from repro.core.tree import ReachabilityTree
from repro.core.walk_trie import WalkTrie
from repro.core.walks import sample_walk_arrays, sample_walk_batch
from repro.datasets import TOY_DECAY
from repro.errors import ConfigurationError, GraphError
from repro.graph import DiGraph
from repro.graph.generators import erdos_renyi_graph

#: prune-off settings shared by the exact-equivalence tests
EXACT = dict(prune=False, max_walk_length=8, compensate_truncation=False)


@pytest.fixture(scope="module")
def dyadic():
    """10 nodes, every in-degree a power of two (0/1/2/4), with a dangling
    node (4), an isolated node (9) and a disconnected 2-cycle (7, 8).

    At ``c = 0.25`` every PROBE intermediate is a dyadic rational well
    inside float53, so both engines compute *exact* arithmetic and their
    outputs must agree bit-for-bit.  (The graph layer rejects self-loops —
    see ``test_self_loops_rejected_by_graph_layer`` — so none appear here.)
    """
    edges = [(1, 0), (2, 0), (0, 1), (3, 2), (6, 2), (0, 3), (1, 3), (2, 3),
             (4, 3), (4, 5), (3, 6), (5, 6), (7, 8), (8, 7)]
    return DiGraph.from_edges(edges, num_nodes=10)


@pytest.fixture(scope="module")
def ragged():
    """A generated graph with dangling nodes and disconnected components."""
    g = erdos_renyi_graph(40, num_edges=100, seed=5)
    edge_list = list(g.edges())
    # append an isolated pair and two fully isolated nodes
    graph = DiGraph.from_edges(edge_list + [(40, 41)], num_nodes=44)
    return graph


def engines(graph, **overrides):
    """A (loop, batched) engine pair with identical configuration."""
    return (
        ProbeSim(graph, strategy="batch", engine="loop", **overrides),
        ProbeSim(graph, strategy="batch", engine="batched", **overrides),
    )


def oracle_estimate(graph, walks, sqrt_c):
    """Algorithm 3 recomputed with the hash-map oracle probe, per prefix."""
    n = graph.num_nodes
    acc = np.zeros(n, dtype=np.float64)
    tree = ReachabilityTree.from_walks(walks)
    for prefix, weight in tree.iter_prefixes():
        for node, value in probe_deterministic_python(graph, prefix, sqrt_c).items():
            acc[node] += weight * value
    return acc / len(walks)


class TestWalkAndTrieArtifacts:
    """Tier 1: integer artifacts are bit-identical across engines."""

    def test_fixed_seed_walks_identical_across_samplers(self, tiny_wiki_csr):
        r1 = np.random.default_rng(97)
        r2 = np.random.default_rng(97)
        walks = sample_walk_batch(tiny_wiki_csr, 11, 400, 0.7, r1, 9)
        nodes, lengths = sample_walk_arrays(tiny_wiki_csr, 11, 400, 0.7, r2, 9)
        assert [nodes[i, : lengths[i]].tolist() for i in range(400)] == walks
        # the padding never leaks valid node ids
        for i in range(400):
            assert np.all(nodes[i, lengths[i]:] == -1)

    def test_trie_multiplicities_match_reachability_tree(self, tiny_wiki_csr):
        rng = np.random.default_rng(3)
        walks = sample_walk_batch(tiny_wiki_csr, 5, 300, 0.7, rng, 7)
        tree = ReachabilityTree.from_walks(walks)
        trie = WalkTrie.from_walks(walks)
        assert trie.num_walks == tree.num_walks == 300
        assert trie.num_tree_nodes == tree.num_tree_nodes()
        assert trie.max_depth == tree.max_depth()
        tree_prefixes = {tuple(p): w for p, w in tree.iter_prefixes()}
        trie_prefixes = {tuple(p): w for p, w in trie.iter_prefixes()}
        assert trie_prefixes == tree_prefixes

    def test_trie_rejects_mixed_roots_and_empty_batches(self):
        with pytest.raises(ValueError, match="share their start"):
            WalkTrie.from_walks([[0, 1], [1, 0]])
        with pytest.raises(ValueError, match="at least one walk"):
            WalkTrie.from_walks([])


class TestNodeForNodeEquivalence:
    """Tier 2: prune-off scores agree to float round-off, engine vs engine
    and engine vs the hash-map oracle."""

    @pytest.mark.parametrize("query", [0, 3, 5])
    def test_toy_matches_loop_engine(self, toy, query):
        loop, batched = engines(toy, c=TOY_DECAY, eps_a=0.1, seed=29,
                                num_walks=400, **EXACT)
        a = loop.single_source(query).scores
        b = batched.single_source(query).scores
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("query", [0, 7, 40, 42])
    def test_ragged_graph_matches_loop_engine(self, ragged, query):
        """Dangling nodes, a disconnected pair (40, 41) and fully isolated
        nodes (42, 43) flow through both engines identically."""
        loop, batched = engines(ragged, c=0.6, eps_a=0.15, seed=17,
                                num_walks=300, **EXACT)
        a = loop.single_source(query).scores
        b = batched.single_source(query).scores
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-12)

    def test_matches_python_oracle_node_for_node(self, toy):
        cfg = dict(c=TOY_DECAY, eps_a=0.1, seed=61, num_walks=256, **EXACT)
        _, batched = engines(toy, **cfg)
        result = batched.single_source(2)
        # replay the identical walk set (same seed, same sampler order)
        replay = ProbeSim(toy, strategy="batch", engine="loop", **cfg)
        stats = QueryStats()
        walks = replay._sample_walks(2, stats)
        expected = oracle_estimate(toy, walks, replay.config.sqrt_c)
        expected[2] = 1.0
        np.testing.assert_allclose(result.scores, expected, rtol=0, atol=1e-12)

    def test_isolated_query_scores_zero_everywhere_else(self, ragged):
        _, batched = engines(ragged, c=0.6, eps_a=0.2, seed=1, num_walks=64)
        result = batched.single_source(43)  # no in-edges: walks never move
        assert result.score(43) == 1.0
        others = np.delete(result.scores, 43)
        assert np.all(others == 0.0)

    def test_pruned_runs_stay_within_rule2_budget(self, tiny_wiki):
        """With pruning on the engines diverge only by the loop engine's
        pruned mass (the batched engine never prunes scores), so the gap is
        one-sided and bounded by the Pruning rule 2 error budget."""
        loop, batched = engines(tiny_wiki, c=0.6, eps_a=0.1, seed=23,
                                num_walks=500)
        a = loop.single_source(11).scores
        b = batched.single_source(11).scores
        budget = loop.config.budget
        bound = (1.0 + budget.eps) / (1.0 - budget.sqrt_c) * budget.eps_p
        diff = b - a
        assert diff.min() >= -1e-12  # batched never loses mass loop kept
        assert diff.max() <= bound + 1e-12


class TestBitwiseEquivalence:
    """Tier 3: bit-for-bit agreement where float arithmetic is exact."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_dyadic_graph_engines_bitwise_identical(self, dyadic, seed):
        for query in range(dyadic.num_nodes):
            loop, batched = engines(dyadic, c=0.25, eps_a=0.1, seed=seed,
                                    num_walks=256, **EXACT)
            a = loop.single_source(query).scores
            b = batched.single_source(query).scores
            np.testing.assert_array_equal(a, b)

    def test_dyadic_graph_oracle_bitwise_identical(self, dyadic):
        cfg = dict(c=0.25, eps_a=0.1, seed=11, num_walks=128, **EXACT)
        _, batched = engines(dyadic, **cfg)
        result = batched.single_source(0)
        replay = ProbeSim(dyadic, strategy="batch", engine="loop", **cfg)
        walks = replay._sample_walks(0, QueryStats())
        expected = oracle_estimate(dyadic, walks, 0.5)
        expected[0] = 1.0
        np.testing.assert_array_equal(result.scores, expected)

    def test_batched_many_bitwise_equals_looped_singles(self, tiny_wiki):
        """Forest columns never mix: the multi-query sweep is bit-identical
        to per-query batched calls on any graph, pruning on or off."""
        queries = [11, 3, 50, 3, 11]
        a = ProbeSim(tiny_wiki, strategy="batch", eps_a=0.15, seed=41)
        b = ProbeSim(tiny_wiki, strategy="batch", eps_a=0.15, seed=41)
        singles = [a.single_source(q) for q in queries]
        many = b.single_source_many(queries)
        assert [r.query for r in many] == queries
        for one, shared in zip(singles, many):
            np.testing.assert_array_equal(one.scores, shared.scores)

    def test_forest_kernel_column_independence(self, toy_csr):
        rng = np.random.default_rng(7)
        tries = [
            WalkTrie.from_walks(sample_walk_batch(toy_csr, q, 100, 0.5, rng, 6))
            for q in (0, 4, 6)
        ]
        forest = probe_trie_forest(toy_csr, tries, 0.5)
        for column, trie in enumerate(tries):
            alone = probe_trie_shared(toy_csr, trie, 0.5)
            np.testing.assert_array_equal(forest[:, column], alone)


class TestEngineSurface:
    """Configuration, dispatch, labels and capability advertising."""

    def test_auto_resolves_batched_only_for_batch_strategy(self):
        assert ProbeSimConfig(strategy="batch").resolved_engine() == "batched"
        assert ProbeSimConfig(strategy="basic").resolved_engine() == "loop"
        assert ProbeSimConfig(strategy="hybrid").resolved_engine() == "loop"
        assert ProbeSimConfig(strategy="randomized").resolved_engine() == "loop"
        assert (
            ProbeSimConfig(strategy="batch", backend="python").resolved_engine()
            == "loop"
        )
        assert (
            ProbeSimConfig(strategy="batch", engine="loop").resolved_engine()
            == "loop"
        )

    def test_batched_rejects_randomized_strategies_and_python_backend(self):
        with pytest.raises(ConfigurationError, match="draws RNG"):
            ProbeSimConfig(strategy="hybrid", engine="batched")
        with pytest.raises(ConfigurationError, match="draws RNG"):
            ProbeSimConfig(strategy="randomized", engine="batched")
        with pytest.raises(ConfigurationError, match="inherently vectorized"):
            ProbeSimConfig(strategy="batch", backend="python", engine="batched")
        with pytest.raises(ConfigurationError, match="engine must be one of"):
            ProbeSimConfig(engine="turbo")

    def test_labels_and_capabilities(self, toy):
        auto = ProbeSim(toy, strategy="batch", eps_a=0.2, seed=1)
        explicit = ProbeSim(toy, strategy="batch", engine="batched",
                            eps_a=0.2, seed=1)
        loop = ProbeSim(toy, strategy="batch", engine="loop", eps_a=0.2, seed=1)
        assert auto.capabilities().vectorized
        assert explicit.capabilities().vectorized
        assert not loop.capabilities().vectorized
        assert auto.single_source(0).method == "probesim-batch"
        assert explicit.single_source(0).method == "probesim-batched"
        assert "vectorized" in auto.capabilities().as_row()

    def test_batched_stats_count_shared_probes(self, tiny_wiki):
        loop, batched = engines(tiny_wiki, eps_a=0.15, seed=9, num_walks=400)
        loop.single_source(11)
        batched.single_source(11)
        assert batched.last_stats.num_walks == loop.last_stats.num_walks == 400
        assert batched.last_stats.num_tree_nodes == loop.last_stats.num_tree_nodes
        # one shared probe per distinct prefix, exactly like Algorithm 3
        assert batched.last_stats.num_probes == loop.last_stats.num_probes
        assert batched.last_stats.walk_length_total == loop.last_stats.walk_length_total

    def test_self_loops_rejected_by_graph_layer(self):
        """Self-loops cannot reach either engine: the graph layer refuses
        them at construction (documented here because the equivalence suite
        would otherwise need a self-loop case)."""
        with pytest.raises(GraphError, match="self-loops"):
            DiGraph.from_edges([(0, 0), (0, 1)])

    def test_sync_refreshes_batched_engine(self, toy):
        graph = toy.copy()
        engine = ProbeSim(graph, strategy="batch", eps_a=0.2, seed=3)
        before = engine.single_source(0).scores.copy()
        graph.remove_edge(4, 1)
        engine.sync()
        after = engine.single_source(0).scores
        assert engine.graph.num_edges == graph.num_edges
        assert not np.array_equal(before, after)
