"""Unit tests for ProbeSimConfig and the Theorem 2 error budget."""

import math

import pytest

from repro.core.config import ErrorBudget, ProbeSimConfig
from repro.errors import BudgetError, ConfigurationError


class TestErrorBudget:
    def test_split_satisfies_theorem2(self):
        budget = ErrorBudget.split(eps_a=0.1, c=0.6)
        sqrt_c = math.sqrt(0.6)
        lhs = budget.eps + (1 + budget.eps) / (1 - sqrt_c) * budget.eps_p + budget.eps_t / 2
        assert lhs <= 0.1 + 1e-12
        assert budget.slack >= -1e-12

    def test_split_fractions_consume_budget(self):
        budget = ErrorBudget.split(eps_a=0.2, c=0.6, sampling_fraction=0.5,
                                   truncation_fraction=0.3, pruning_fraction=0.2)
        assert budget.eps == pytest.approx(0.1)
        assert budget.eps_t == pytest.approx(2 * 0.3 * 0.2)
        assert budget.consumed == pytest.approx(0.2)

    def test_overfull_split_rejected(self):
        with pytest.raises(BudgetError):
            ErrorBudget.split(eps_a=0.1, c=0.6, sampling_fraction=0.8,
                              truncation_fraction=0.3, pruning_fraction=0.1)

    def test_direct_violation_rejected(self):
        with pytest.raises(BudgetError):
            ErrorBudget(eps_a=0.1, eps=0.2, eps_t=0.0001, eps_p=0.0001, c=0.6)

    def test_fraction_bounds(self):
        with pytest.raises(BudgetError):
            ErrorBudget.split(eps_a=0.1, c=0.6, sampling_fraction=0.0)
        with pytest.raises(BudgetError):
            ErrorBudget.split(eps_a=0.1, c=0.6, pruning_fraction=1.5)

    def test_sqrt_c(self):
        budget = ErrorBudget.split(eps_a=0.1, c=0.36)
        assert budget.sqrt_c == pytest.approx(0.6)


class TestProbeSimConfig:
    def test_defaults_valid(self):
        cfg = ProbeSimConfig()
        assert cfg.c == 0.6
        assert cfg.strategy == "hybrid"
        assert cfg.budget.slack >= -1e-12

    def test_walk_count_formula(self):
        cfg = ProbeSimConfig(eps_a=0.1, delta=0.01, c=0.6)
        eps = cfg.budget.eps
        expected = math.ceil(3 * 0.6 / eps**2 * math.log(1000 / 0.01))
        assert cfg.walk_count(1000) == expected

    def test_walk_count_monotone_in_eps(self):
        loose = ProbeSimConfig(eps_a=0.2).walk_count(1000)
        tight = ProbeSimConfig(eps_a=0.05).walk_count(1000)
        assert tight > loose

    def test_walk_count_override(self):
        cfg = ProbeSimConfig(num_walks=123)
        assert cfg.walk_count(10**6) == 123

    def test_walk_truncation_formula(self):
        cfg = ProbeSimConfig(eps_a=0.1, c=0.6)
        eps_t = cfg.budget.eps_t
        expected = math.ceil(math.log(eps_t) / math.log(math.sqrt(0.6)))
        assert cfg.walk_truncation() == expected

    def test_walk_truncation_override(self):
        assert ProbeSimConfig(max_walk_length=7).walk_truncation() == 7

    def test_no_prune_disables_threshold_and_truncation(self):
        cfg = ProbeSimConfig(prune=False)
        assert cfg.prune_threshold() == 0.0
        assert cfg.walk_truncation() >= 1000

    def test_invalid_strategy(self):
        with pytest.raises(ConfigurationError):
            ProbeSimConfig(strategy="magic")

    def test_invalid_backend(self):
        with pytest.raises(ConfigurationError):
            ProbeSimConfig(backend="cuda")

    def test_invalid_probabilities(self):
        for kwargs in ({"c": 1.5}, {"eps_a": 0.0}, {"delta": 1.0}):
            with pytest.raises(ConfigurationError):
                ProbeSimConfig(**kwargs)

    def test_invalid_walk_overrides(self):
        with pytest.raises(ConfigurationError):
            ProbeSimConfig(num_walks=0)
        with pytest.raises(ConfigurationError):
            ProbeSimConfig(max_walk_length=-2)

    def test_invalid_switch_constant(self):
        with pytest.raises(ConfigurationError):
            ProbeSimConfig(hybrid_switch_constant=0.0)

    def test_with_overrides(self):
        cfg = ProbeSimConfig(eps_a=0.1)
        other = cfg.with_overrides(eps_a=0.2, strategy="basic")
        assert other.eps_a == 0.2
        assert other.strategy == "basic"
        assert cfg.eps_a == 0.1  # original untouched

    def test_frozen(self):
        cfg = ProbeSimConfig()
        with pytest.raises(AttributeError):
            cfg.c = 0.9
