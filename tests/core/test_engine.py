"""Tests for the ProbeSim engine: every strategy against exact ground truth,
the Theorem 1/2 accuracy guarantee, dynamic refresh, and diagnostics."""

import numpy as np
import pytest

from repro.core.config import ProbeSimConfig
from repro.core.engine import ProbeSim
from repro.core.tree import ReachabilityTree
from repro.datasets import TOY_DECAY
from repro.errors import QueryError
from repro.eval.metrics import abs_error_max
from repro.graph import CSRGraph, DiGraph

STRATEGIES = ("basic", "batch", "randomized", "hybrid")


class TestAccuracyGuarantee:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_within_eps_on_toy(self, toy, toy_truth, strategy):
        engine = ProbeSim(
            toy, c=TOY_DECAY, eps_a=0.05, delta=0.01, strategy=strategy, seed=99
        )
        for query in range(toy.num_nodes):
            result = engine.single_source(query)
            truth = toy_truth.single_source(query)
            assert abs_error_max(result.scores, truth, query) <= 0.05

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_within_eps_on_tiny_wiki(self, tiny_wiki, tiny_wiki_truth, strategy):
        engine = ProbeSim(
            tiny_wiki, c=0.6, eps_a=0.1, delta=0.05, strategy=strategy, seed=4
        )
        for query in (10, 50):
            result = engine.single_source(query)
            truth = tiny_wiki_truth.single_source(query)
            assert abs_error_max(result.scores, truth, query) <= 0.1

    def test_python_backend_matches_guarantee(self, toy, toy_truth):
        engine = ProbeSim(
            toy, c=TOY_DECAY, eps_a=0.05, delta=0.01, strategy="batch",
            backend="python", seed=13,
        )
        result = engine.single_source(0)
        assert abs_error_max(result.scores, toy_truth.single_source(0), 0) <= 0.05

    def test_basic_and_batch_agree_exactly_with_same_walks(self, toy):
        """With identical seeds the walk sets coincide, and batch probing is a
        pure dedup of basic probing — estimates must match to fp error.

        Pinned to ``engine="loop"``: only the per-prefix engine prunes each
        probe individually, which is what makes dedup bit-compatible with
        per-walk probing under Pruning rule 2.  (The batched trie-sharing
        engine prunes merged columns — strictly less — and has its own
        equivalence suite in tests/core/test_batch_engine.py.)"""
        basic = ProbeSim(
            toy, c=TOY_DECAY, eps_a=0.1, strategy="basic", seed=123, num_walks=500
        ).single_source(0)
        batch = ProbeSim(
            toy, c=TOY_DECAY, eps_a=0.1, strategy="batch", engine="loop",
            seed=123, num_walks=500,
        ).single_source(0)
        np.testing.assert_allclose(basic.scores, batch.scores, atol=1e-10)

    def test_compensation_shifts_scores_up(self, toy):
        plain = ProbeSim(
            toy, c=TOY_DECAY, eps_a=0.1, seed=5, num_walks=300
        ).single_source(0)
        compensated = ProbeSim(
            toy, c=TOY_DECAY, eps_a=0.1, seed=5, num_walks=300,
            compensate_truncation=True,
        ).single_source(0)
        shift = ProbeSimConfig(c=TOY_DECAY, eps_a=0.1).budget.eps_t / 2
        others = [v for v in range(8) if v != 0]
        np.testing.assert_allclose(
            compensated.scores[others], plain.scores[others] + shift, atol=1e-12
        )
        assert compensated.score(0) == 1.0


class TestResultShape:
    def test_query_scores_one(self, toy):
        result = ProbeSim(toy, c=TOY_DECAY, eps_a=0.2, seed=1).single_source(3)
        assert result.score(3) == 1.0

    def test_scores_in_unit_interval(self, tiny_wiki):
        result = ProbeSim(tiny_wiki, eps_a=0.15, delta=0.1, seed=2).single_source(7)
        assert result.scores.min() >= 0.0
        assert result.scores.max() <= 1.0 + 1e-9

    def test_topk_is_sorted_prefix_of_single_source(self, tiny_wiki):
        engine = ProbeSim(tiny_wiki, eps_a=0.15, delta=0.1, seed=3)
        top = engine.topk(7, 10)
        assert top.k == 10
        assert all(top.scores[i] >= top.scores[i + 1] for i in range(9))
        assert 7 not in top.nodes.tolist()

    def test_method_label_carries_strategy(self, toy):
        result = ProbeSim(toy, c=TOY_DECAY, eps_a=0.2, strategy="basic", seed=1
                          ).single_source(0)
        assert result.method == "probesim-basic"

    def test_num_walks_matches_config(self, toy):
        engine = ProbeSim(toy, c=TOY_DECAY, eps_a=0.2, seed=1, num_walks=77)
        assert engine.single_source(0).num_walks == 77

    def test_deterministic_given_seed(self, tiny_wiki):
        a = ProbeSim(tiny_wiki, eps_a=0.2, delta=0.1, seed=55).single_source(9)
        b = ProbeSim(tiny_wiki, eps_a=0.2, delta=0.1, seed=55).single_source(9)
        np.testing.assert_array_equal(a.scores, b.scores)


class TestValidation:
    def test_bad_query_node(self, toy):
        engine = ProbeSim(toy, c=TOY_DECAY, eps_a=0.2, seed=1)
        with pytest.raises(QueryError):
            engine.single_source(100)
        with pytest.raises(QueryError):
            engine.single_source(-1)
        with pytest.raises(QueryError):
            engine.single_source("a")

    def test_bad_k(self, toy):
        with pytest.raises(QueryError):
            ProbeSim(toy, c=TOY_DECAY, eps_a=0.2, seed=1).topk(0, 0)

    def test_config_and_overrides_compose(self, toy):
        cfg = ProbeSimConfig(eps_a=0.2, strategy="basic")
        engine = ProbeSim(toy, config=cfg, strategy="batch")
        assert engine.config.strategy == "batch"
        assert engine.config.eps_a == 0.2

    def test_accepts_csr_input(self, toy_csr):
        engine = ProbeSim(toy_csr, c=TOY_DECAY, eps_a=0.2, seed=1)
        assert engine.single_source(0).score(0) == 1.0


class TestDynamicRefresh:
    def test_refresh_picks_up_mutations(self, toy, toy_truth):
        graph = toy.copy()
        engine = ProbeSim(graph, c=TOY_DECAY, eps_a=0.05, delta=0.01, seed=8)
        before = engine.single_source(0)
        # removing b's in-edge from e changes s(a, b) materially
        graph.remove_edge(4, 1)
        engine.sync()
        after = engine.single_source(0)
        from repro.eval.ground_truth import compute_ground_truth

        new_truth = compute_ground_truth(graph, c=TOY_DECAY, iterations=80)
        assert abs_error_max(after.scores, new_truth.single_source(0), 0) <= 0.05
        # and the answer genuinely moved
        assert not np.allclose(before.scores, after.scores, atol=1e-3)

    def test_snapshot_isolated_without_refresh(self, toy):
        graph = toy.copy()
        engine = ProbeSim(graph, c=TOY_DECAY, eps_a=0.2, seed=8)
        m_before = engine.graph.num_edges
        graph.remove_edge(4, 1)
        assert engine.graph.num_edges == m_before  # stale until sync
        engine.sync()
        assert engine.graph.num_edges == m_before - 1


class TestDiagnostics:
    def test_stats_populated(self, tiny_wiki):
        engine = ProbeSim(tiny_wiki, eps_a=0.15, delta=0.1, strategy="hybrid", seed=6)
        engine.single_source(11)
        stats = engine.last_stats
        assert stats.num_walks > 0
        assert stats.num_probes > 0
        assert stats.num_tree_nodes > 0
        assert stats.elapsed > 0
        assert stats.mean_walk_length >= 1.0

    def test_batch_probes_fewer_than_basic(self, tiny_wiki):
        basic = ProbeSim(
            tiny_wiki, eps_a=0.15, delta=0.1, strategy="basic", seed=7, num_walks=800
        )
        basic.single_source(11)
        batch = ProbeSim(
            tiny_wiki, eps_a=0.15, delta=0.1, strategy="batch", seed=7, num_walks=800
        )
        batch.single_source(11)
        assert batch.last_stats.num_probes < basic.last_stats.num_probes

    def test_hybrid_switch_triggers_on_low_constant(self, tiny_wiki, tiny_wiki_truth):
        engine = ProbeSim(
            tiny_wiki, eps_a=0.1, delta=0.1, strategy="hybrid", seed=9,
            hybrid_switch_constant=1e-6, num_walks=400,
        )
        result = engine.single_source(11)
        assert engine.last_stats.num_hybrid_switches > 0
        # accuracy must survive the switch (unbiased continuations)
        err = abs_error_max(result.scores, tiny_wiki_truth.single_source(11), 11)
        assert err <= 0.12  # eps_a + slack for the Bernoulli variance

    def test_estimate_from_tree_matches_batch(self, toy):
        """The public tree-probing hook used by WalkIndex must equal the
        batch strategy's estimate for the same tree (loop engine: the hook
        probes per prefix, so only the per-prefix engine is bit-compatible
        with it under pruning)."""
        engine = ProbeSim(toy, c=TOY_DECAY, eps_a=0.1, strategy="batch",
                          engine="loop", seed=21, num_walks=300)
        result = engine.single_source(0)
        # rebuild the same walks by reusing the seed
        engine2 = ProbeSim(toy, c=TOY_DECAY, eps_a=0.1, strategy="batch",
                           engine="loop", seed=21, num_walks=300)
        from repro.core.engine import QueryStats

        stats = QueryStats()
        walks = engine2._sample_walks(0, stats)
        tree = ReachabilityTree.from_walks(walks)
        estimates = engine2.estimate_from_tree(tree, hybrid=False)
        estimates[0] = 1.0
        np.testing.assert_allclose(estimates, result.scores, atol=1e-12)

    def test_repr(self, toy):
        assert "ProbeSim" in repr(ProbeSim(toy, c=TOY_DECAY, eps_a=0.2))


class TestQuerySeeded:
    """query_seeded=True: answers are pure functions of (config, graph, query),
    independent of call order and batch grouping — the contract the HTTP
    coalescer (repro.server.coalesce) relies on for bit-exact micro-batching."""

    @pytest.mark.parametrize("engine_kind", ["loop", "batched"])
    def test_grouping_invariant(self, tiny_wiki, engine_kind):
        kwargs = dict(
            c=0.6, eps_a=0.15, delta=0.1, strategy="batch", engine=engine_kind,
            seed=31, num_walks=200, query_seeded=True,
        )
        queries = [10, 50, 10, 3]
        engine = ProbeSim(tiny_wiki, **kwargs)
        singles = [engine.single_source(q).scores for q in queries]
        # one batch, reversed order, and pairwise splits must all agree bitwise
        for grouping in ([queries], [queries[::-1]], [queries[:2], queries[2:]]):
            fresh = ProbeSim(tiny_wiki, **kwargs)
            got = {}
            for group in grouping:
                for res in fresh.single_source_many(group):
                    got[res.query] = res.scores
            for q, expected in zip(queries, singles):
                np.testing.assert_array_equal(got[q], expected)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_call_order_invariant_all_strategies(self, toy, strategy):
        kwargs = dict(
            c=TOY_DECAY, eps_a=0.2, strategy=strategy, seed=5, num_walks=80,
            query_seeded=True,
        )
        forward = [ProbeSim(toy, **kwargs).single_source(q).scores for q in (0, 1, 2)]
        engine = ProbeSim(toy, **kwargs)
        backward = {q: engine.single_source(q).scores for q in (2, 1, 0)}
        for q, expected in zip((0, 1, 2), forward):
            np.testing.assert_array_equal(backward[q], expected)

    def test_requires_integer_seed(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="query_seeded"):
            ProbeSimConfig(query_seeded=True)
        with pytest.raises(ConfigurationError, match="query_seeded"):
            ProbeSimConfig(query_seeded=True, seed=np.random.default_rng(3))

    def test_default_stream_still_sequential(self, toy):
        """Off by default: the shared-stream behaviour (answers depend on the
        draw history) is untouched, so golden results elsewhere stay valid."""
        a = ProbeSim(toy, c=TOY_DECAY, eps_a=0.2, seed=11, num_walks=80)
        first = a.single_source(0).scores
        again = a.single_source(0).scores  # stream advanced: walks differ
        b = ProbeSim(toy, c=TOY_DECAY, eps_a=0.2, seed=11, num_walks=80)
        np.testing.assert_array_equal(b.single_source(0).scores, first)
        assert not np.array_equal(first, again)
