"""Correctness suite for the native kernel engine (``engine="native"``).

Four tiers of guarantees are pinned here:

1. **Bit-reproducibility** — with an integer seed, a native answer is a
   pure function of ``(config, graph, query)``: repeated calls, fresh
   engines, different call orders, and every ``single_source_many`` batch
   composition return byte-identical scores (the counter RNG is keyed by
   ``(seed, query, walk, step)``, so no call shares stream state).
2. **Backend parity** — the numba loop kernels and the numpy fallback
   produce byte-identical walks, tries, and scores.  Without numba the
   kernels run as plain Python (the same code ``NUMBA_DISABLE_JIT=1``
   executes on a numba install — the parity CI job runs this suite both
   ways), so the twin pairing is exercised everywhere.
3. **Oracle agreement** — on dyadic graphs (``c = 0.25``, power-of-two
   in-degrees and walk budget) every probe intermediate is exactly
   representable, so native scores are bit-for-bit equal to the hash-map
   oracle replaying the same walk set; on general graphs they agree to
   float round-off.
4. **Surface** — config validation, ``auto`` never resolving to native,
   capabilities/labels, registry construction, stats, and sync.
"""

import numpy as np
import pytest

from repro.api.registry import create
from repro.core import native
from repro.core.config import ProbeSimConfig
from repro.core.engine import ProbeSim
from repro.core.native import fallback, kernels
from repro.core.native.rng import stream_base, walk_bases
from repro.core.probe import probe_deterministic_python
from repro.core.tree import ReachabilityTree
from repro.core.walk_trie import WalkTrie
from repro.errors import ConfigurationError
from repro.graph import CSRGraph, DiGraph
from repro.graph.generators import erdos_renyi_graph

#: compensation off so scores are the raw walk average (oracle-comparable)
EXACT = dict(compensate_truncation=False, max_walk_length=8)


@pytest.fixture(scope="module")
def dyadic():
    """Power-of-two in-degrees (0/1/2/4) + a dangling node, an isolated
    node, and a disconnected 2-cycle: at ``c = 0.25`` all arithmetic is
    exact, so backends and oracle must agree bit-for-bit."""
    edges = [(1, 0), (2, 0), (0, 1), (3, 2), (6, 2), (0, 3), (1, 3), (2, 3),
             (4, 3), (4, 5), (3, 6), (5, 6), (7, 8), (8, 7)]
    return DiGraph.from_edges(edges, num_nodes=10)


@pytest.fixture(scope="module")
def ragged():
    """A generated graph with dangling and fully isolated nodes."""
    g = erdos_renyi_graph(40, num_edges=100, seed=5)
    return DiGraph.from_edges(list(g.edges()) + [(40, 41)], num_nodes=44)


def native_engine(graph, **overrides):
    overrides.setdefault("strategy", "batch")
    return ProbeSim(graph, engine="native", **overrides)


def replay_walks(graph, query, seed, num_walks, sqrt_c, max_len):
    """The exact walk set a native query draws, as a list of walks."""
    csr = CSRGraph.from_digraph(graph) if isinstance(graph, DiGraph) else graph
    bases = walk_bases(stream_base(seed, query), num_walks)
    nodes, lengths = fallback.sample_walks(
        csr.in_indptr, csr.in_indices, csr.in_degrees,
        bases, query, sqrt_c, max_len,
    )
    return [nodes[i, : lengths[i]].tolist() for i in range(num_walks)]


def oracle_estimate(graph, walks, sqrt_c):
    """Algorithm 3 with the hash-map oracle probe, per distinct prefix."""
    acc = np.zeros(graph.num_nodes, dtype=np.float64)
    tree = ReachabilityTree.from_walks(walks)
    for prefix, weight in tree.iter_prefixes():
        for node, value in probe_deterministic_python(graph, prefix, sqrt_c).items():
            acc[node] += weight * value
    return acc / len(walks)


class TestBitReproducibility:
    """Tier 1: one (seed, query) -> one byte pattern, however it is asked."""

    def test_repeats_and_fresh_engines_are_identical(self, tiny_wiki):
        a = native_engine(tiny_wiki, eps_a=0.15, seed=42)
        first = a.single_source(11).scores
        second = a.single_source(11).scores
        fresh = native_engine(tiny_wiki, eps_a=0.15, seed=42).single_source(11)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, fresh.scores)

    def test_answers_are_call_order_independent(self, tiny_wiki):
        a = native_engine(tiny_wiki, eps_a=0.15, seed=7)
        b = native_engine(tiny_wiki, eps_a=0.15, seed=7)
        forward = {q: a.single_source(q).scores for q in (3, 11, 50)}
        backward = {q: b.single_source(q).scores for q in (50, 11, 3)}
        for q in (3, 11, 50):
            np.testing.assert_array_equal(forward[q], backward[q])

    def test_every_batch_composition_is_identical(self, tiny_wiki):
        """single_source_many answers never depend on how queries are
        grouped — the bit-reproducibility contract batching rides on."""
        queries = [11, 3, 50, 3, 11]
        engine = native_engine(tiny_wiki, eps_a=0.15, seed=9)
        singles = [engine.single_source(q).scores for q in queries]
        as_batch = engine.single_source_many(queries)
        pair_a = engine.single_source_many(queries[:2])
        pair_b = engine.single_source_many(queries[2:])
        assert [r.query for r in as_batch] == queries
        for one, many in zip(singles, as_batch):
            np.testing.assert_array_equal(one, many.scores)
        for one, many in zip(singles, pair_a + pair_b):
            np.testing.assert_array_equal(one, many.scores)

    def test_seeds_and_queries_produce_distinct_streams(self, tiny_wiki):
        a = native_engine(tiny_wiki, eps_a=0.15, seed=1).single_source(11)
        b = native_engine(tiny_wiki, eps_a=0.15, seed=2).single_source(11)
        c = native_engine(tiny_wiki, eps_a=0.15, seed=1).single_source(12)
        assert not np.array_equal(a.scores, b.scores)
        assert not np.array_equal(a.scores, c.scores)

    def test_unseeded_engine_still_answers(self, toy):
        result = native_engine(toy, c=0.25, eps_a=0.2, num_walks=64).single_source(0)
        assert result.score(0) == 1.0
        assert np.all(result.scores >= 0.0)


class TestBackendParity:
    """Tier 2: the loop kernels and the numpy fallback are byte twins."""

    def test_walks_byte_identical(self, tiny_wiki_csr):
        bases = walk_bases(stream_base(5, 11), 300)
        args = (tiny_wiki_csr.in_indptr, tiny_wiki_csr.in_indices,
                tiny_wiki_csr.in_degrees, bases, 11, 0.7, 9)
        nodes_f, lengths_f = fallback.sample_walks(*args)
        nodes_k, lengths_k = kernels.sample_walks(*args)
        np.testing.assert_array_equal(lengths_f, lengths_k)
        np.testing.assert_array_equal(nodes_f, nodes_k)

    def test_trie_kernel_matches_canonical_trie(self, tiny_wiki_csr):
        bases = walk_bases(stream_base(5, 11), 300)
        nodes, lengths = fallback.sample_walks(
            tiny_wiki_csr.in_indptr, tiny_wiki_csr.in_indices,
            tiny_wiki_csr.in_degrees, bases, 11, 0.7, 9,
        )
        canonical = WalkTrie.from_walk_arrays(nodes, lengths)
        kernel = native.build_trie_kernel(nodes, lengths)
        assert kernel.root == canonical.root
        assert kernel.num_walks == canonical.num_walks
        assert len(kernel.levels) == len(canonical.levels)
        for a, b in zip(kernel.levels, canonical.levels):
            np.testing.assert_array_equal(a.nodes, b.nodes)
            np.testing.assert_array_equal(a.parents, b.parents)
            np.testing.assert_array_equal(a.weights, b.weights)

    @pytest.mark.parametrize("query", [0, 3, 11, 50])
    def test_scores_byte_identical(self, tiny_wiki_csr, query):
        ctx = native.make_context(tiny_wiki_csr, 0.7)
        base = stream_base(17, query)
        scores_f, trie_f = native.run_query(
            ctx, query, 400, 0.7, 9, base, fallback, kernel_trie=False)
        scores_k, trie_k = native.run_query(
            ctx, query, 400, 0.7, 9, base, kernels, kernel_trie=True)
        assert trie_f.num_walks == trie_k.num_walks
        assert trie_f.num_tree_nodes == trie_k.num_tree_nodes
        np.testing.assert_array_equal(scores_f, scores_k)

    def test_resolve_impl_selects_both_namespaces(self):
        assert native.resolve_impl("numpy") is fallback
        assert native.resolve_impl("numba") is kernels
        assert native.resolve_impl() is native.resolve_impl(native.native_backend())


class TestOracleAgreement:
    """Tier 3: native scores equal the hash-map oracle on native's walks."""

    @pytest.mark.parametrize("query", range(10))
    def test_dyadic_graph_bitwise_equals_oracle(self, dyadic, query):
        cfg = dict(c=0.25, eps_a=0.1, seed=11, num_walks=256, **EXACT)
        result = native_engine(dyadic, **cfg).single_source(query)
        walks = replay_walks(dyadic, query, 11, 256, 0.5, 8)
        expected = oracle_estimate(dyadic, walks, 0.5)
        expected[query] = 1.0
        np.testing.assert_array_equal(result.scores, expected)

    @pytest.mark.parametrize("query", [0, 7, 40, 42])
    def test_ragged_graph_matches_oracle_to_roundoff(self, ragged, query):
        cfg = dict(c=0.6, eps_a=0.15, seed=23, num_walks=300, **EXACT)
        result = native_engine(ragged, **cfg).single_source(query)
        walks = replay_walks(
            ragged, query, 23, 300, np.sqrt(0.6), 8)
        expected = oracle_estimate(ragged, walks, np.sqrt(0.6))
        expected[query] = 1.0
        np.testing.assert_allclose(result.scores, expected, rtol=0, atol=1e-12)

    def test_isolated_query_scores_zero_everywhere_else(self, ragged):
        result = native_engine(ragged, c=0.6, eps_a=0.2, seed=1,
                               num_walks=64).single_source(43)
        assert result.score(43) == 1.0
        assert np.all(np.delete(result.scores, 43) == 0.0)


class TestEngineSurface:
    """Tier 4: config, routing, capabilities, registry, stats, sync."""

    def test_auto_never_resolves_to_native(self):
        for strategy in ("basic", "batch", "randomized", "hybrid"):
            assert ProbeSimConfig(strategy=strategy).resolved_engine() != "native"
        assert ProbeSimConfig(strategy="batch", engine="native").resolved_engine() == "native"

    def test_native_rejects_randomized_strategies_and_python_backend(self):
        with pytest.raises(ConfigurationError, match="draws RNG"):
            ProbeSimConfig(strategy="hybrid", engine="native")
        with pytest.raises(ConfigurationError, match="draws RNG"):
            ProbeSimConfig(strategy="randomized", engine="native")
        with pytest.raises(ConfigurationError, match="inherently vectorized"):
            ProbeSimConfig(strategy="batch", backend="python", engine="native")

    def test_label_and_capabilities(self, toy):
        engine = native_engine(toy, c=0.25, eps_a=0.2, seed=1)
        caps = engine.capabilities()
        assert caps.method == "probesim-native"
        assert caps.native and caps.vectorized and caps.parallel_safe
        assert caps.as_row()["native"] is True
        assert engine.single_source(0).method == "probesim-native"
        assert not ProbeSim(toy, strategy="batch", seed=1).capabilities().native

    def test_registry_constructs_the_native_engine(self, toy):
        est = create("probesim-native", toy, c=0.25, eps_a=0.2, seed=3)
        direct = native_engine(toy, c=0.25, eps_a=0.2, seed=3)
        assert est.capabilities().native
        np.testing.assert_array_equal(
            est.single_source(0).scores, direct.single_source(0).scores)

    def test_stats_are_populated(self, tiny_wiki):
        engine = native_engine(tiny_wiki, eps_a=0.15, seed=9, num_walks=400)
        engine.single_source(11)
        stats = engine.last_stats
        assert stats.num_walks == 400
        assert stats.num_tree_nodes > 0
        assert stats.num_probes == stats.num_tree_nodes
        assert stats.walk_length_total >= stats.num_walks

    def test_context_is_cached_per_snapshot(self, tiny_wiki_csr):
        """Engines sharing one CSR snapshot share one operator build."""
        a = native_engine(tiny_wiki_csr, eps_a=0.15, seed=9)
        b = native_engine(tiny_wiki_csr, eps_a=0.15, seed=10)
        a.single_source(3)
        b.single_source(3)
        assert native.context_for(a.graph, a.config.sqrt_c) is native.context_for(
            b.graph, b.config.sqrt_c)

    def test_sync_refreshes_the_native_context(self, toy):
        graph = toy.copy()
        engine = native_engine(graph, c=0.25, eps_a=0.2, seed=3)
        before = engine.single_source(0).scores.copy()
        graph.remove_edge(4, 1)
        engine.sync()
        after = engine.single_source(0).scores
        assert engine.graph.num_edges == graph.num_edges
        assert not np.array_equal(before, after)

    def test_walk_budget_matches_other_engines(self, toy):
        shared = dict(c=0.25, eps_a=0.1, delta=0.2, strategy="batch", seed=0)
        loop = ProbeSim(toy, engine="loop", **shared)
        nat = ProbeSim(toy, engine="native", **shared)
        assert loop.single_source(0).num_walks == nat.single_source(0).num_walks
