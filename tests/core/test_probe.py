"""Tests for the deterministic PROBE algorithm.

The anchor is the paper's §3.2 running example on the toy graph: probing the
walk (a, b, a, b) must reproduce every printed intermediate and final score
exactly (as fractions, not just to the printed rounding).
"""

import numpy as np
import pytest

from repro.core.probe import (
    probe_deterministic,
    probe_deterministic_python,
    probe_deterministic_vectorized,
)
from repro.core.walks import sample_sqrt_c_walk
from repro.datasets.toy import node_id
from repro.errors import QueryError
from repro.graph import CSRGraph, DiGraph

SQRT_C_TOY = 0.5  # the example uses c' = 0.25


def _walk(*names: str) -> list[int]:
    return [node_id(name) for name in names]


class TestPaperWorkedExample:
    """Every number printed in §3.2, verified as exact fractions."""

    def test_probe_abab_final_scores(self, toy):
        scores = probe_deterministic_python(toy, _walk("a", "b", "a", "b"), SQRT_C_TOY)
        expected = {
            node_id("b"): 1 / 96,     # paper prints 0.011
            node_id("c"): 7 / 216,    # paper prints 0.033
            node_id("e"): 11 / 288,   # paper prints 0.038
            node_id("f"): 11 / 576,   # paper prints 0.019
        }
        assert set(scores) == set(expected)
        for node, value in expected.items():
            assert scores[node] == pytest.approx(value, abs=1e-12)

    def test_probe_ab_scores(self, toy):
        # S2 = {(c, 0.167), (d, 0.5), (e, 0.25)}
        scores = probe_deterministic_python(toy, _walk("a", "b"), SQRT_C_TOY)
        assert scores == pytest.approx(
            {node_id("c"): 1 / 6, node_id("d"): 1 / 2, node_id("e"): 1 / 4}
        )

    def test_probe_aba_scores(self, toy):
        # S3 = {(f, 0.021), (g, 0.028), (h, 0.028)}
        scores = probe_deterministic_python(toy, _walk("a", "b", "a"), SQRT_C_TOY)
        assert scores == pytest.approx(
            {node_id("f"): 1 / 48, node_id("g"): 1 / 36, node_id("h"): 1 / 36}
        )

    def test_trial_estimate_sums_probes(self, toy):
        # §3.2: summing S2-S4 gives s~(a, c) = 0.2, s~(a, d) = 0.5, etc.
        walk = _walk("a", "b", "a", "b")
        total: dict[int, float] = {}
        for i in range(2, 5):
            for node, value in probe_deterministic_python(
                toy, walk[:i], SQRT_C_TOY
            ).items():
                total[node] = total.get(node, 0.0) + value
        # the paper prints sums of already-rounded probe scores, so the
        # comparison tolerance is the accumulated rounding (~1.5e-3).
        assert total[node_id("c")] == pytest.approx(0.2, abs=1.5e-3)
        assert total[node_id("d")] == pytest.approx(0.5)
        assert total[node_id("e")] == pytest.approx(0.2877, abs=1.5e-3)
        assert total[node_id("f")] == pytest.approx(0.04, abs=1.5e-3)
        assert total[node_id("g")] == pytest.approx(0.028, abs=1.5e-3)
        assert total[node_id("h")] == pytest.approx(0.028, abs=1.5e-3)
        assert total[node_id("b")] == pytest.approx(0.011, abs=1.5e-3)

    def test_pruning_example(self, toy):
        # §4.1: with eps_p = 0.05, c's subtree is pruned in iteration 1 of
        # the probe on (a, b, a, b): Score(c, 1) * (sqrt c)^2 = 0.042 < eps_p.
        pruned = probe_deterministic_python(
            toy, _walk("a", "b", "a", "b"), SQRT_C_TOY, eps_p=0.05
        )
        unpruned = probe_deterministic_python(
            toy, _walk("a", "b", "a", "b"), SQRT_C_TOY
        )
        # every pruned score must be <= its unpruned value (one-sided error)
        for node, value in pruned.items():
            assert value <= unpruned[node] + 1e-12


class TestFirstMeetingSemantics:
    def test_scores_are_first_meeting_probabilities(self, toy, rng):
        """Monte Carlo cross-check of Definition 4 (non-circular oracle).

        P(v, prefix) = Pr over sqrt-c walks W(v) that W(v) hits prefix[-1]
        at step len(prefix)-1 while avoiding the earlier prefix nodes at the
        matching steps.
        """
        prefix = _walk("a", "b", "a", "b")
        i = len(prefix)
        scores = probe_deterministic_python(toy, prefix, SQRT_C_TOY)
        trials = 60_000
        for name in "bcef":
            v = node_id(name)
            hits = 0
            for _ in range(trials):
                walk = sample_sqrt_c_walk(toy, v, SQRT_C_TOY, rng, max_length=i)
                if len(walk) < i:
                    continue
                # first-meeting: walk[j] must equal prefix[j] only at j = i-1
                if walk[i - 1] != prefix[i - 1]:
                    continue
                if any(walk[j] == prefix[j] for j in range(1, i - 1)):
                    continue
                hits += 1
            estimate = hits / trials
            assert estimate == pytest.approx(scores[v], abs=0.004)

    def test_avoidance_excludes_earlier_meetings(self, toy):
        # probing (a, b): a walk from d can only reach b at step 2 via b's
        # out-edge... d's only in-neighbour is b, so P(d, (a,b)) = sqrt_c / 1.
        scores = probe_deterministic_python(toy, _walk("a", "b"), SQRT_C_TOY)
        assert scores[node_id("d")] == pytest.approx(SQRT_C_TOY)

    def test_query_node_can_receive_score(self, toy):
        # nothing forbids v-walks meeting u's walk at a node that equals u
        # later on; only stepwise collisions with the prefix are excluded.
        scores = probe_deterministic_python(toy, _walk("a", "b", "a", "b"), SQRT_C_TOY)
        assert node_id("a") not in scores  # a happens to get zero here

    def test_scores_bounded_by_survival_probability(self, toy):
        """P(v, prefix) <= sqrt(c)^(i-1): the walk from v must survive i-1
        geometric stops to meet at step i."""
        for prefix in (_walk("a", "b"), _walk("a", "b", "a"), _walk("a", "c", "a"),
                       _walk("a", "b", "a", "b")):
            scores = probe_deterministic_python(toy, prefix, SQRT_C_TOY)
            bound = SQRT_C_TOY ** (len(prefix) - 1)
            for value in scores.values():
                assert 0.0 < value <= bound + 1e-12


class TestBackendsAgree:
    @pytest.mark.parametrize("eps_p", [0.0, 0.01, 0.05])
    def test_python_vs_vectorized_on_toy(self, toy, toy_csr, eps_p):
        rng = np.random.default_rng(77)
        for _ in range(60):
            walk = sample_sqrt_c_walk(toy, int(rng.integers(8)), 0.75, rng, max_length=6)
            if len(walk) < 2:
                continue
            sparse_scores = probe_deterministic_python(toy, walk, SQRT_C_TOY, eps_p)
            dense_scores = probe_deterministic_vectorized(
                toy_csr, walk, SQRT_C_TOY, eps_p
            )
            rebuilt = {
                node: dense_scores[node]
                for node in np.nonzero(dense_scores)[0].tolist()
            }
            assert rebuilt == pytest.approx(sparse_scores, abs=1e-12)

    def test_python_vs_vectorized_on_random_graph(self, tiny_wiki, tiny_wiki_csr):
        rng = np.random.default_rng(5)
        sqrt_c = np.sqrt(0.6)
        for _ in range(25):
            start = int(rng.integers(tiny_wiki.num_nodes))
            walk = sample_sqrt_c_walk(tiny_wiki, start, sqrt_c, rng, max_length=5)
            if len(walk) < 2:
                continue
            sparse_scores = probe_deterministic_python(tiny_wiki, walk, sqrt_c)
            dense_scores = probe_deterministic_vectorized(tiny_wiki_csr, walk, sqrt_c)
            for node, value in sparse_scores.items():
                assert dense_scores[node] == pytest.approx(value, abs=1e-12)
            assert np.count_nonzero(dense_scores) == len(sparse_scores)

    def test_matvec_path_agrees_with_slice_path(self, tiny_wiki_csr):
        """Force the dense-matvec branch and compare against the default."""
        rng = np.random.default_rng(11)
        sqrt_c = np.sqrt(0.6)
        walk = sample_sqrt_c_walk(tiny_wiki_csr, 3, sqrt_c, rng, max_length=5)
        if len(walk) < 2:
            walk = [3] + [int(tiny_wiki_csr.in_neighbors(3)[0])]
        via_slices = probe_deterministic_vectorized(
            tiny_wiki_csr, walk, sqrt_c, dense_frontier_fraction=1e9
        )
        via_matvec = probe_deterministic_vectorized(
            tiny_wiki_csr, walk, sqrt_c, dense_frontier_fraction=1e-9
        )
        np.testing.assert_allclose(via_slices, via_matvec, atol=1e-12)

    def test_dispatcher_backends(self, toy, toy_csr):
        walk = _walk("a", "b", "a")
        out_py = probe_deterministic(toy, walk, SQRT_C_TOY, backend="python")
        out_vec = probe_deterministic(toy_csr, walk, SQRT_C_TOY, backend="vectorized")
        np.testing.assert_allclose(out_py, out_vec, atol=1e-12)

    def test_dispatcher_converts_digraph_for_vectorized(self, toy):
        out = probe_deterministic(toy, _walk("a", "b"), SQRT_C_TOY, backend="vectorized")
        assert out[node_id("d")] == pytest.approx(0.5)

    def test_dispatcher_unknown_backend(self, toy):
        with pytest.raises(QueryError):
            probe_deterministic(toy, _walk("a", "b"), SQRT_C_TOY, backend="gpu")


class TestEdgeCases:
    def test_prefix_too_short(self, toy, toy_csr):
        with pytest.raises(QueryError):
            probe_deterministic_python(toy, [0], SQRT_C_TOY)
        with pytest.raises(QueryError):
            probe_deterministic_vectorized(toy_csr, [0], SQRT_C_TOY)

    def test_dead_frontier_returns_empty(self):
        # 1 -> 0; probing (0, 1): node 1 has no out-neighbours besides...
        g = DiGraph.from_edges([(1, 0)])
        scores = probe_deterministic_python(g, [0, 1], 0.5)
        assert scores == {}

    def test_full_prune_returns_empty(self, toy):
        scores = probe_deterministic_python(
            toy, _walk("a", "b", "a", "b"), SQRT_C_TOY, eps_p=1.0
        )
        assert scores == {}
        dense = probe_deterministic_vectorized(
            CSRGraph.from_digraph(toy), _walk("a", "b", "a", "b"), SQRT_C_TOY, eps_p=1.0
        )
        assert not np.any(dense)

    def test_pruning_error_bounded_by_eps_p(self, tiny_wiki, tiny_wiki_csr):
        """Lemma 7: 0 <= Score(v) - Score(v, eps_p) <= eps_p."""
        rng = np.random.default_rng(31)
        sqrt_c = np.sqrt(0.6)
        eps_p = 0.02
        checked = 0
        # start walks inside the dense core (nonzero in-degree) so they are
        # long enough to exercise multiple pruning iterations.
        eligible = np.nonzero(tiny_wiki_csr.in_degrees > 0)[0]
        for _ in range(60):
            start = int(rng.choice(eligible))
            walk = sample_sqrt_c_walk(tiny_wiki, start, sqrt_c, rng, max_length=5)
            if len(walk) < 3:
                continue
            full = probe_deterministic_vectorized(tiny_wiki_csr, walk, sqrt_c)
            pruned = probe_deterministic_vectorized(tiny_wiki_csr, walk, sqrt_c, eps_p)
            diff = full - pruned
            assert diff.min() >= -1e-12
            assert diff.max() <= eps_p + 1e-12
            checked += 1
        assert checked > 5
