"""Tests for the randomized PROBE (Algorithm 4).

The key property is Lemma 6 / Theorem 3: for every node, membership in the
final level is a Bernoulli trial whose success probability equals the
deterministic PROBE score.  We verify it empirically against the
deterministic probe with tight CLT tolerances.
"""

import numpy as np
import pytest

from repro.core.probe import probe_deterministic_vectorized
from repro.core.randomized_probe import (
    probe_randomized,
    probe_randomized_from_membership,
)
from repro.core.walks import sample_sqrt_c_walk
from repro.datasets.toy import node_id
from repro.errors import QueryError
from repro.graph import CSRGraph

SQRT_C_TOY = 0.5


def _walk(*names):
    return [node_id(name) for name in names]


class TestUnbiasedness:
    def test_matches_deterministic_on_paper_example(self, toy_csr):
        prefix = _walk("a", "b", "a", "b")
        truth = probe_deterministic_vectorized(toy_csr, prefix, SQRT_C_TOY)
        rng = np.random.default_rng(42)
        trials = 40_000
        counts = np.zeros(toy_csr.num_nodes)
        for _ in range(trials):
            selected = probe_randomized(toy_csr, prefix, SQRT_C_TOY, rng)
            counts[selected] += 1
        empirical = counts / trials
        # CLT band: 4 sigma with sigma <= sqrt(p(1-p)/trials) <= 0.0025
        np.testing.assert_allclose(empirical, truth, atol=0.006)

    def test_matches_deterministic_on_short_prefix(self, toy_csr):
        prefix = _walk("a", "b")
        truth = probe_deterministic_vectorized(toy_csr, prefix, SQRT_C_TOY)
        rng = np.random.default_rng(7)
        trials = 30_000
        counts = np.zeros(toy_csr.num_nodes)
        for _ in range(trials):
            counts[probe_randomized(toy_csr, prefix, SQRT_C_TOY, rng)] += 1
        np.testing.assert_allclose(counts / trials, truth, atol=0.011)

    def test_matches_on_random_graph_prefix(self, tiny_wiki_csr):
        rng = np.random.default_rng(3)
        sqrt_c = np.sqrt(0.6)
        # pick a prefix with a meaningfully large frontier
        walk = None
        for _ in range(100):
            start = int(rng.integers(tiny_wiki_csr.num_nodes))
            candidate = sample_sqrt_c_walk(tiny_wiki_csr, start, sqrt_c, rng, max_length=4)
            if len(candidate) >= 3:
                walk = candidate
                break
        assert walk is not None
        truth = probe_deterministic_vectorized(tiny_wiki_csr, walk, sqrt_c)
        trials = 12_000
        counts = np.zeros(tiny_wiki_csr.num_nodes)
        for _ in range(trials):
            counts[probe_randomized(tiny_wiki_csr, walk, sqrt_c, rng)] += 1
        # only check nodes with non-negligible probability (tight abs band)
        significant = np.nonzero(truth > 0.01)[0]
        np.testing.assert_allclose(
            (counts / trials)[significant], truth[significant], atol=0.02
        )


class TestMechanics:
    def test_selected_nodes_respect_avoidance(self, toy_csr):
        # final iteration of (a, b) avoids a: a must never be selected
        rng = np.random.default_rng(0)
        for _ in range(500):
            selected = probe_randomized(toy_csr, _walk("a", "b"), SQRT_C_TOY, rng)
            assert node_id("a") not in selected.tolist()

    def test_selected_only_reachable_nodes(self, toy_csr):
        # probing (a, b): only c, d, e have positive deterministic score
        rng = np.random.default_rng(1)
        allowed = {node_id("c"), node_id("d"), node_id("e")}
        for _ in range(500):
            selected = probe_randomized(toy_csr, _walk("a", "b"), SQRT_C_TOY, rng)
            assert set(selected.tolist()) <= allowed

    def test_prefix_too_short(self, toy_csr):
        with pytest.raises(QueryError):
            probe_randomized(toy_csr, [0], SQRT_C_TOY)

    def test_dead_prefix_returns_empty(self):
        csr = CSRGraph.from_edges([(1, 0)])
        rng = np.random.default_rng(2)
        for _ in range(50):
            assert len(probe_randomized(csr, [0, 1], 0.5, rng)) == 0

    def test_candidate_fallback_to_all_nodes(self):
        """When the level's out-degree mass exceeds n, Algorithm 4 scans V.

        A star where node 0 points at everything triggers the fallback when 0
        is in the level; semantics must be unchanged (selected nodes are
        exactly out-neighbours that sampled a level member and accepted).
        """
        n = 12
        edges = [(0, v) for v in range(1, n)] + [(v, 0) for v in range(1, n)]
        csr = CSRGraph.from_edges(edges)
        truth = probe_deterministic_vectorized(csr, [5, 0], np.sqrt(0.6))
        rng = np.random.default_rng(9)
        trials = 20_000
        counts = np.zeros(n)
        for _ in range(trials):
            counts[probe_randomized(csr, [5, 0], np.sqrt(0.6), rng)] += 1
        np.testing.assert_allclose(counts / trials, truth, atol=0.015)


class TestContinuationFromMembership:
    def test_continuation_from_initial_level_matches_full_probe(self, toy_csr):
        """Starting at iteration 0 with {u_i} must equal probe_randomized."""
        prefix = _walk("a", "b", "a", "b")
        membership = np.zeros(toy_csr.num_nodes, dtype=bool)
        membership[prefix[-1]] = True
        rng_a = np.random.default_rng(17)
        rng_b = np.random.default_rng(17)
        for _ in range(200):
            full = probe_randomized(toy_csr, prefix, SQRT_C_TOY, rng_a)
            cont = probe_randomized_from_membership(
                toy_csr, prefix, 0, membership, SQRT_C_TOY, rng_b
            )
            assert sorted(full.tolist()) == sorted(cont.tolist())

    def test_continuation_is_unbiased_given_marginals(self, toy_csr):
        """Bernoulli-sampling a deterministic mid-level then continuing
        randomized reproduces the final deterministic marginals (the §4.4
        hybrid's correctness argument)."""
        prefix = _walk("a", "b", "a", "b")
        truth = probe_deterministic_vectorized(toy_csr, prefix, SQRT_C_TOY)
        # deterministic level after iteration 0 (H_1): probe of suffix...
        # compute H_1 directly: expand {b} avoiding u_3 = a.
        h1 = np.zeros(toy_csr.num_nodes)
        h1[node_id("c")] = 1 / 6
        h1[node_id("d")] = 1 / 2
        h1[node_id("e")] = 1 / 4
        rng = np.random.default_rng(23)
        trials = 40_000
        counts = np.zeros(toy_csr.num_nodes)
        for _ in range(trials):
            membership = rng.random(toy_csr.num_nodes) < h1
            selected = probe_randomized_from_membership(
                toy_csr, prefix, 1, membership, SQRT_C_TOY, rng
            )
            counts[selected] += 1
        np.testing.assert_allclose(counts / trials, truth, atol=0.006)

    def test_invalid_start_iteration(self, toy_csr):
        membership = np.zeros(toy_csr.num_nodes, dtype=bool)
        with pytest.raises(QueryError):
            probe_randomized_from_membership(
                toy_csr, _walk("a", "b"), 5, membership, SQRT_C_TOY
            )

    def test_empty_membership_returns_empty(self, toy_csr):
        membership = np.zeros(toy_csr.num_nodes, dtype=bool)
        out = probe_randomized_from_membership(
            toy_csr, _walk("a", "b", "a"), 1, membership, SQRT_C_TOY
        )
        assert len(out) == 0
