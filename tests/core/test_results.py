"""Unit tests for result containers."""

import numpy as np
import pytest

from repro.core.results import SimRankResult, TopKResult
from repro.errors import QueryError


def _result(scores, query=0, method="m"):
    return SimRankResult(query=query, scores=np.array(scores, dtype=float), method=method)


class TestSimRankResult:
    def test_basic_accessors(self):
        res = _result([1.0, 0.3, 0.2])
        assert res.num_nodes == 3
        assert res.score(1) == pytest.approx(0.3)
        assert res.query == 0

    def test_score_out_of_range(self):
        res = _result([1.0, 0.5])
        with pytest.raises(QueryError):
            res.score(5)

    def test_rejects_matrix_scores(self):
        with pytest.raises(QueryError):
            SimRankResult(query=0, scores=np.zeros((2, 2)))

    def test_topk_excludes_query(self):
        res = _result([1.0, 0.3, 0.9, 0.1])
        top = res.topk(2)
        assert top.nodes.tolist() == [2, 1]
        assert top.scores.tolist() == pytest.approx([0.9, 0.3])

    def test_topk_tie_break_by_node_id(self):
        res = _result([1.0, 0.5, 0.5, 0.5])
        top = res.topk(2)
        assert top.nodes.tolist() == [1, 2]

    def test_topk_clamps_k(self):
        res = _result([1.0, 0.2, 0.1])
        assert res.topk(50).k == 2  # n - 1 candidates

    def test_topk_invalid_k(self):
        with pytest.raises(QueryError):
            _result([1.0, 0.2]).topk(0)

    def test_as_dict_thresholds_and_excludes_query(self):
        res = _result([1.0, 0.4, 0.0, 0.05])
        d = res.as_dict(threshold=0.01)
        assert d == {1: pytest.approx(0.4), 3: pytest.approx(0.05)}

    def test_repr(self):
        assert "SimRankResult" in repr(_result([1.0, 0.1]))


class TestTopKResult:
    def test_pairs_and_node_set(self):
        top = TopKResult(query=0, nodes=np.array([2, 1]), scores=np.array([0.9, 0.3]))
        assert top.as_pairs() == [(2, pytest.approx(0.9)), (1, pytest.approx(0.3))]
        assert top.node_set() == {1, 2}
        assert top.k == 2

    def test_iteration(self):
        top = TopKResult(query=0, nodes=np.array([5]), scores=np.array([0.7]))
        assert list(top) == [(5, pytest.approx(0.7))]

    def test_length_mismatch_rejected(self):
        with pytest.raises(QueryError):
            TopKResult(query=0, nodes=np.array([1, 2]), scores=np.array([0.1]))

    def test_repr(self):
        top = TopKResult(query=3, nodes=np.array([1]), scores=np.array([0.2]))
        assert "query=3" in repr(top)
