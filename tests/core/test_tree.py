"""Unit tests for the reverse-reachability tree (Algorithm 3's trie)."""

import pytest

from repro.core.tree import ReachabilityTree, TreeNode


class TestInsertion:
    def test_root_weight_counts_walks(self):
        tree = ReachabilityTree(root=0)
        tree.insert_walk([0, 1])
        tree.insert_walk([0, 2])
        tree.insert_walk([0])
        assert tree.num_walks == 3

    def test_shared_prefix_accumulates_weight(self):
        tree = ReachabilityTree(root=0)
        tree.insert_walk([0, 1, 2])
        tree.insert_walk([0, 1, 3])
        prefixes = dict(
            (tuple(path), weight) for path, weight in tree.iter_prefixes()
        )
        assert prefixes[(0, 1)] == 2
        assert prefixes[(0, 1, 2)] == 1
        assert prefixes[(0, 1, 3)] == 1

    def test_paper_figure3_example(self):
        """Figure 3: tree of (a,b,c) and (a,c,a), then insert (a,b,a)."""
        a, b, c = 0, 1, 2
        tree = ReachabilityTree(root=a)
        tree.insert_walk([a, b, c])
        tree.insert_walk([a, c, a])
        tree.insert_walk([a, b, a])
        prefixes = dict((tuple(p), w) for p, w in tree.iter_prefixes())
        assert tree.num_walks == 3  # r1.weight = 3
        assert prefixes[(a, b)] == 2  # r2.weight = 2
        assert prefixes[(a, b, c)] == 1
        assert prefixes[(a, c)] == 1
        assert prefixes[(a, c, a)] == 1
        assert prefixes[(a, b, a)] == 1  # the new node r6

    def test_wrong_root_rejected(self):
        tree = ReachabilityTree(root=0)
        with pytest.raises(ValueError):
            tree.insert_walk([1, 0])

    def test_empty_walk_rejected(self):
        tree = ReachabilityTree(root=0)
        with pytest.raises(ValueError):
            tree.insert_walk([])

    def test_singleton_walks_add_no_prefixes(self):
        tree = ReachabilityTree(root=4)
        tree.insert_walk([4])
        assert tree.num_tree_nodes() == 0
        assert tree.num_walks == 1


class TestInvariants:
    def _random_walks(self, seed, count=200):
        import numpy as np

        rng = np.random.default_rng(seed)
        walks = []
        for _ in range(count):
            length = 1 + rng.geometric(0.35)
            walk = [0] + rng.integers(0, 6, size=length - 1).tolist()
            walks.append(walk)
        return walks

    def test_children_weights_bounded_by_parent(self):
        walks = self._random_walks(1)
        tree = ReachabilityTree.from_walks(walks)

        def check(node: TreeNode):
            child_total = sum(child.weight for child in node.children.values())
            assert child_total <= node.weight
            for child in node.children.values():
                check(child)

        check(tree.root)

    def test_prefix_weights_equal_walk_prefix_counts(self):
        walks = self._random_walks(2)
        tree = ReachabilityTree.from_walks(walks)
        for path, weight in tree.iter_prefixes():
            expected = sum(
                1 for walk in walks if tuple(walk[: len(path)]) == tuple(path)
            )
            assert weight == expected

    def test_every_walk_prefix_is_in_tree(self):
        walks = self._random_walks(3, count=50)
        tree = ReachabilityTree.from_walks(walks)
        prefixes = {tuple(p) for p, _ in tree.iter_prefixes()}
        for walk in walks:
            for i in range(2, len(walk) + 1):
                assert tuple(walk[:i]) in prefixes

    def test_max_depth(self):
        tree = ReachabilityTree(root=0)
        tree.insert_walk([0, 1, 2, 3, 4])
        tree.insert_walk([0, 1])
        assert tree.max_depth() == 5

    def test_max_depth_bare_root(self):
        assert ReachabilityTree(root=0).max_depth() == 1

    def test_from_walks_requires_nonempty(self):
        with pytest.raises(ValueError):
            ReachabilityTree.from_walks([])

    def test_repr(self):
        tree = ReachabilityTree.from_walks([[0, 1], [0, 2]])
        assert "walks=2" in repr(tree)
