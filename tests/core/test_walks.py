"""Unit tests for √c-walk sampling and truncation."""

import math

import numpy as np
import pytest

from repro.core.walks import (
    expected_walk_length,
    sample_sqrt_c_walk,
    sample_walk_batch,
    truncation_length,
)
from repro.graph import CSRGraph, DiGraph


@pytest.fixture(scope="module")
def cycle_csr():
    """3-cycle: every node has exactly one in-neighbour, walks never dead-end."""
    return CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])


class TestTruncationLength:
    def test_formula(self):
        sqrt_c = math.sqrt(0.6)
        assert truncation_length(0.05, sqrt_c) == math.ceil(
            math.log(0.05) / math.log(sqrt_c)
        )

    def test_paper_example(self):
        # §4.1 running example: eps_t = 0.05 at sqrt(c') = 0.5 truncates a
        # 5-node walk to 4 nodes: (sqrt(c))^4 < 0.05 <= (sqrt(c))^4... l_t=5?
        # log(0.05)/log(0.5) = 4.32 -> ceil 5; the example keeps 4 nodes
        # because the walk is cut *at step* l_t (nodes beyond index l_t drop).
        assert truncation_length(0.05, 0.5) == 5

    def test_tighter_eps_longer_walks(self):
        sqrt_c = math.sqrt(0.6)
        assert truncation_length(0.001, sqrt_c) > truncation_length(0.05, sqrt_c)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            truncation_length(0.0, 0.5)
        with pytest.raises(ValueError):
            truncation_length(0.1, 1.0)


class TestSampleWalk:
    def test_starts_at_source(self, toy, rng):
        walk = sample_sqrt_c_walk(toy, 3, 0.5, rng)
        assert walk[0] == 3

    def test_steps_follow_in_edges(self, toy, rng):
        for _ in range(100):
            walk = sample_sqrt_c_walk(toy, 0, 0.9, rng, max_length=10)
            for current, nxt in zip(walk, walk[1:]):
                assert nxt in toy.in_neighbors(current)

    def test_max_length_respected(self, cycle_csr, rng):
        for _ in range(50):
            walk = sample_sqrt_c_walk(cycle_csr, 0, 0.99, rng, max_length=4)
            assert len(walk) <= 4

    def test_dead_end_stops_walk(self, rng):
        g = DiGraph.from_edges([(0, 1)])  # node 0 has no in-neighbours
        for _ in range(20):
            walk = sample_sqrt_c_walk(g, 1, 0.999, rng, max_length=10)
            assert walk in ([1], [1, 0])

    def test_geometric_length_distribution(self, cycle_csr, rng):
        # On a cycle (no dead ends), len - 1 ~ Geometric(1 - sqrt_c):
        # E[len] = 1 / (1 - sqrt_c).
        sqrt_c = 0.6
        lengths = [
            len(sample_sqrt_c_walk(cycle_csr, 0, sqrt_c, rng)) for _ in range(4000)
        ]
        mean = np.mean(lengths)
        assert mean == pytest.approx(expected_walk_length(sqrt_c), rel=0.08)

    def test_zero_continue_probability_gives_singleton(self, cycle_csr, rng):
        # sqrt_c ~ 0 stops immediately (rng.random() >= sqrt_c almost surely)
        walk = sample_sqrt_c_walk(cycle_csr, 1, 1e-12, rng)
        assert walk == [1]

    def test_works_on_digraph_and_csr(self, toy, toy_csr):
        walk_dg = sample_sqrt_c_walk(toy, 0, 0.5, np.random.default_rng(0))
        walk_csr = sample_sqrt_c_walk(toy_csr, 0, 0.5, np.random.default_rng(0))
        assert walk_dg[0] == walk_csr[0] == 0


class TestSampleWalkBatch:
    def test_count_and_starts(self, toy_csr, rng):
        walks = sample_walk_batch(toy_csr, 0, 37, 0.5, rng)
        assert len(walks) == 37
        assert all(walk[0] == 0 for walk in walks)

    def test_edges_valid(self, toy, toy_csr, rng):
        for walk in sample_walk_batch(toy_csr, 0, 100, 0.7, rng, max_length=8):
            for current, nxt in zip(walk, walk[1:]):
                assert nxt in toy.in_neighbors(current)

    def test_max_length(self, cycle_csr, rng):
        walks = sample_walk_batch(cycle_csr, 0, 200, 0.99, rng, max_length=5)
        assert max(len(w) for w in walks) <= 5
        # with sqrt_c = 0.99 nearly every walk should hit the cap
        assert sum(len(w) == 5 for w in walks) > 150

    def test_zero_count(self, toy_csr, rng):
        assert sample_walk_batch(toy_csr, 0, 0, 0.5, rng) == []

    def test_batch_length_distribution_matches_sequential(self, cycle_csr):
        sqrt_c = 0.7
        batch = sample_walk_batch(
            cycle_csr, 0, 5000, sqrt_c, np.random.default_rng(1)
        )
        seq_rng = np.random.default_rng(2)
        seq = [sample_sqrt_c_walk(cycle_csr, 0, sqrt_c, seq_rng) for _ in range(5000)]
        mean_batch = np.mean([len(w) for w in batch])
        mean_seq = np.mean([len(w) for w in seq])
        assert mean_batch == pytest.approx(mean_seq, rel=0.06)

    def test_digraph_fallback(self, toy, rng):
        walks = sample_walk_batch(toy, 0, 10, 0.5, rng)
        assert len(walks) == 10


class TestDeterminism:
    """One seeded Generator threads the whole batch: same seed, same walks —
    the contract both execution engines build their equivalence on."""

    def test_arrays_and_lists_share_one_rng_stream(self, toy_csr):
        from repro.core.walks import sample_walk_arrays

        nodes, lengths = sample_walk_arrays(
            toy_csr, 0, 250, 0.7, np.random.default_rng(42), max_length=7
        )
        walks = sample_walk_batch(
            toy_csr, 0, 250, 0.7, np.random.default_rng(42), max_length=7
        )
        assert [nodes[i, : lengths[i]].tolist() for i in range(250)] == walks
        assert nodes.dtype == np.int32
        # padding is strictly -1 beyond each walk's end
        for i in range(250):
            assert np.all(nodes[i, lengths[i]:] == -1)

    def test_same_seed_identical_walks_across_engines(self, tiny_wiki):
        """Loop and batched engines consume the RNG identically, so a fixed
        seed pins one walk multiset regardless of engine (the precondition
        of the golden-equivalence suite)."""
        from repro import ProbeSim
        from repro.core.engine import QueryStats

        loop = ProbeSim(tiny_wiki, strategy="batch", engine="loop",
                        eps_a=0.15, seed=77, num_walks=300)
        batched = ProbeSim(tiny_wiki, strategy="batch", engine="batched",
                           eps_a=0.15, seed=77, num_walks=300)
        loop_walks = loop._sample_walks(9, QueryStats())
        trie = batched._sample_trie(9, QueryStats())
        from repro.core.walk_trie import WalkTrie

        assert dict(
            (tuple(p), w) for p, w in WalkTrie.from_walks(loop_walks).iter_prefixes()
        ) == dict((tuple(p), w) for p, w in trie.iter_prefixes())

    def test_reseeding_per_walk_would_correlate(self, cycle_csr):
        """Anti-regression for the shared-generator fix: re-seeding per walk
        collapses the batch onto one trajectory, which is exactly what
        threading a single Generator prevents."""
        shared_rng = np.random.default_rng(5)
        threaded = sample_walk_batch(cycle_csr, 0, 50, 0.9, shared_rng, 12)
        reseeded = [
            sample_sqrt_c_walk(cycle_csr, 0, 0.9, np.random.default_rng(5), 12)
            for _ in range(50)
        ]
        assert len({tuple(w) for w in reseeded}) == 1  # all identical: broken
        assert len({tuple(w) for w in threaded}) > 1  # independent: correct
