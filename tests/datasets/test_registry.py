"""Tests for the stand-in dataset registry."""

import pytest

from repro.datasets import (
    DATASETS,
    large_dataset_names,
    load_dataset,
    small_dataset_names,
)
from repro.errors import DatasetError
from repro.graph import compute_stats


class TestRegistryShape:
    def test_all_eight_datasets_present(self):
        assert set(small_dataset_names()) | set(large_dataset_names()) == set(DATASETS)
        assert len(DATASETS) == 8

    def test_paper_order(self):
        assert small_dataset_names() == ["wiki-vote", "hepth", "as", "hepph"]
        assert large_dataset_names() == ["livejournal", "it-2004", "twitter", "friendster"]

    def test_kinds_consistent(self):
        for name in small_dataset_names():
            assert DATASETS[name].kind == "small"
        for name in large_dataset_names():
            assert DATASETS[name].kind == "large"

    def test_every_dataset_has_all_scales(self):
        for spec in DATASETS.values():
            assert {"tiny", "small", "paper"} <= set(spec.sizes)
            assert spec.sizes["tiny"] < spec.sizes["small"] < spec.sizes["paper"]


class TestLoading:
    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("orkut")

    def test_unknown_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("wiki-vote", scale="galactic")

    def test_deterministic(self):
        assert load_dataset("as", "tiny") == load_dataset("as", "tiny")

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_tiny_scale_builds(self, name):
        g = load_dataset(name, scale="tiny")
        assert g.num_nodes == DATASETS[name].sizes["tiny"]
        assert g.num_edges > 0


class TestProfiles:
    def test_wiki_vote_zero_in_degree_fraction(self):
        stats = compute_stats(load_dataset("wiki-vote", scale="tiny"))
        assert stats.zero_in_degree_fraction > 0.5  # the paper's >60% profile

    def test_hepth_is_undirected(self):
        stats = compute_stats(load_dataset("hepth", scale="tiny"))
        assert stats.reciprocity == 1.0

    def test_hepph_denser_than_as(self):
        as_stats = compute_stats(load_dataset("as", scale="tiny"))
        hepph_stats = compute_stats(load_dataset("hepph", scale="tiny"))
        assert hepph_stats.mean_in_degree > 2 * as_stats.mean_in_degree

    def test_web_graph_bounded_out_degree(self):
        g = load_dataset("it-2004", scale="tiny")
        assert max(g.out_degree(v) for v in g.nodes()) <= 6

    def test_twitter_denser_than_it2004(self):
        twitter = compute_stats(load_dataset("twitter", scale="tiny"))
        web = compute_stats(load_dataset("it-2004", scale="tiny"))
        assert twitter.mean_in_degree > web.mean_in_degree

    def test_power_law_in_degrees_on_social_graphs(self):
        for name in ("livejournal", "friendster"):
            stats = compute_stats(load_dataset(name, scale="tiny"))
            assert stats.in_degree_gini > 0.35, name
