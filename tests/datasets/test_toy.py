"""Locks the Figure 1 toy-graph reconstruction against every fact the paper
prints about it (DESIGN.md §6)."""

import pytest

from repro.baselines.power import PowerMethod
from repro.datasets.toy import (
    TOY_DECAY,
    TOY_EDGES,
    TOY_EXPECTED_SIMRANK_FROM_A,
    TOY_NODE_NAMES,
    TOY_TABLE2_TOLERANCE,
    node_id,
    toy_graph,
)


class TestStructure:
    def test_counts(self, toy):
        assert toy.num_nodes == 8
        assert toy.num_edges == 20
        assert len(TOY_EDGES) == 20

    def test_in_degrees_pinned_by_worked_example(self, toy):
        # §3.2 denominators: |I(a)|=2, |I(b)|=2, |I(c)|=3, |I(d)|=1,
        # |I(e)|=2, |I(f)|=4, |I(g)|=3, |I(h)|=3
        expected = dict(zip("abcdefgh", [2, 2, 3, 1, 2, 4, 3, 3]))
        for name, degree in expected.items():
            assert toy.in_degree(node_id(name)) == degree, name

    def test_probe_expansion_edges(self, toy):
        # the probing tree of Figure 2: b's out-neighbours are a, c, d, e...
        assert sorted(toy.out_neighbors(node_id("b"))) == [
            node_id("a"), node_id("c"), node_id("d"), node_id("e"),
        ]
        # ...c, d, e all point to f, g, h
        for src in "cde":
            for dst in "fgh":
                assert toy.has_edge(node_id(src), node_id(dst)), (src, dst)
        # only c points back at a
        assert toy.has_edge(node_id("c"), node_id("a"))
        assert not toy.has_edge(node_id("d"), node_id("a"))
        assert not toy.has_edge(node_id("e"), node_id("a"))

    def test_g_h_share_in_neighbourhood(self, toy):
        """Table 2 gives s(a,g) = s(a,h); SimRank from a depends only on
        in-edges, so g and h must have identical in-neighbour sets."""
        assert sorted(toy.in_neighbors(node_id("g"))) == sorted(
            toy.in_neighbors(node_id("h"))
        )

    def test_node_id_mapping(self):
        assert node_id("a") == 0
        assert node_id("h") == 7
        with pytest.raises(KeyError):
            node_id("z")

    def test_fresh_instances(self):
        assert toy_graph() is not toy_graph()
        assert toy_graph() == toy_graph()


class TestTable2:
    def test_power_method_reproduces_table2(self, toy):
        S = PowerMethod(toy, c=TOY_DECAY).compute(iterations=80)
        for name, expected in TOY_EXPECTED_SIMRANK_FROM_A.items():
            got = float(S[node_id("a"), node_id(name)])
            assert got == pytest.approx(expected, abs=TOY_TABLE2_TOLERANCE), name

    def test_d_is_top1_for_a(self, toy_truth):
        assert int(toy_truth.topk_nodes(0, 1)[0]) == node_id("d")

    def test_decay_is_quarter(self):
        assert TOY_DECAY == 0.25
        assert TOY_DECAY**0.5 == 0.5
