"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import EvaluationError
from repro.eval.charts import GLYPHS, Series, scatter_chart, tradeoff_chart


def _single_point_chart(**kwargs):
    series = Series("m", [(1.0, 1.0)])
    return scatter_chart([series], **kwargs)


class TestScatterChart:
    def test_renders_points_and_legend(self):
        a = Series("alpha", [(0.1, 0.5), (1.0, 0.2)])
        b = Series("beta", [(0.5, 0.9)])
        chart = scatter_chart([a, b], width=40, height=10)
        assert "o=alpha" in chart
        assert "*=beta" in chart
        assert chart.count("o") >= 2  # both alpha points placed
        assert "*" in chart

    def test_title_and_labels(self):
        chart = _single_point_chart(title="demo", x_label="time", y_label="err")
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert "err" in lines[1]
        assert "time" in chart

    def test_log_axes_snap_to_decades(self):
        series = Series("m", [(0.001, 0.01), (1.0, 0.5)])
        chart = scatter_chart([series], log_x=True, log_y=True)
        assert "0.001 .. 1" in chart
        assert "(log)" in chart

    def test_log_axis_clamps_zero_points(self):
        series = Series("m", [(0.0, 0.1), (1.0, 0.2)])
        chart = scatter_chart([series], log_x=True)
        assert "legend" in chart  # renders without error

    def test_log_axis_rejects_all_nonpositive(self):
        series = Series("m", [(0.0, 1.0)])
        with pytest.raises(EvaluationError):
            scatter_chart([series], log_x=True)

    def test_degenerate_range_renders(self):
        series = Series("m", [(2.0, 3.0), (2.0, 3.0)])
        chart = scatter_chart([series])
        assert "legend" in chart

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            scatter_chart([])
        with pytest.raises(EvaluationError):
            scatter_chart([Series("m")])

    def test_too_small_rejected(self):
        with pytest.raises(EvaluationError):
            _single_point_chart(width=5, height=2)

    def test_grid_dimensions(self):
        chart = _single_point_chart(width=30, height=8)
        rows = [ln for ln in chart.splitlines() if ln.startswith("|")]
        assert len(rows) == 8
        assert all(len(ln) <= 31 for ln in rows)

    def test_many_series_cycle_glyphs(self):
        series = [Series(f"s{i}", [(i + 1.0, 1.0)]) for i in range(10)]
        chart = scatter_chart(series)
        assert f"{GLYPHS[0]}=s0" in chart
        assert f"{GLYPHS[1]}=s9" in chart  # 10th series wraps to glyph 1


class TestTradeoffChart:
    def test_builds_series_from_rows(self):
        rows = [
            {"method": "probesim", "query_time_s": 0.1, "abs_error": 0.01},
            {"method": "probesim", "query_time_s": 0.2, "abs_error": 0.005},
            {"method": "tsf", "query_time_s": 0.05, "abs_error": 0.05},
        ]
        chart = tradeoff_chart(
            rows, "query_time_s", "abs_error",
            log_x=True, log_y=True, title="fig4",
        )
        assert "o=probesim" in chart
        assert "*=tsf" in chart
        assert chart.splitlines()[0] == "fig4"

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            tradeoff_chart([{"method": "m", "x": 1.0}], "x", "y")
