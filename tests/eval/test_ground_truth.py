"""Tests for the exact ground-truth wrapper."""

import numpy as np
import pytest

from repro.datasets import TOY_DECAY
from repro.errors import EvaluationError
from repro.eval.ground_truth import GroundTruth, compute_ground_truth


class TestGroundTruth:
    def test_single_source_row(self, toy_truth):
        row = toy_truth.single_source(0)
        assert row[0] == 1.0
        assert row[3] == pytest.approx(0.131, abs=5e-4)

    def test_pair_symmetry(self, toy_truth):
        for u in range(8):
            for v in range(8):
                assert toy_truth.pair(u, v) == pytest.approx(
                    toy_truth.pair(v, u), abs=1e-12
                )

    def test_topk_nodes_sorted_by_truth(self, toy_truth):
        nodes = toy_truth.topk_nodes(0, 3)
        scores = [toy_truth.pair(0, int(v)) for v in nodes]
        assert scores == sorted(scores, reverse=True)
        assert nodes[0] == 3  # d, per Table 2

    def test_topk_excludes_query(self, toy_truth):
        assert 0 not in toy_truth.topk_nodes(0, 7).tolist()

    def test_kth_score(self, toy_truth):
        assert toy_truth.kth_score(0, 1) == pytest.approx(0.131, abs=5e-4)

    def test_k_too_large(self, toy_truth):
        with pytest.raises(EvaluationError):
            toy_truth.topk_nodes(0, 8)

    def test_node_out_of_range(self, toy_truth):
        with pytest.raises(EvaluationError):
            toy_truth.single_source(99)

    def test_non_square_rejected(self):
        with pytest.raises(EvaluationError):
            GroundTruth(np.zeros((2, 3)), c=0.6)

    def test_compute_uses_power_method(self, toy, toy_truth):
        other = compute_ground_truth(toy, c=TOY_DECAY, iterations=80)
        np.testing.assert_allclose(
            other.single_source(0), toy_truth.single_source(0), atol=1e-12
        )

    def test_num_nodes(self, toy_truth):
        assert toy_truth.num_nodes == 8
