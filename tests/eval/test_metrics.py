"""Tests for the §6.1 metrics against hand-computed cases."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.metrics import (
    abs_error_max,
    abs_error_mean,
    kendall_tau,
    ndcg_at_k,
    precision_at_k,
)


class TestAbsError:
    def test_max_excludes_query(self):
        estimates = np.array([0.0, 0.5, 0.2])
        truth = np.array([1.0, 0.4, 0.25])
        assert abs_error_max(estimates, truth, query=0) == pytest.approx(0.1)

    def test_mean_excludes_query(self):
        estimates = np.array([0.0, 0.5, 0.2])
        truth = np.array([1.0, 0.4, 0.3])
        assert abs_error_mean(estimates, truth, query=0) == pytest.approx(0.1)

    def test_exact_estimates_zero_error(self):
        truth = np.array([1.0, 0.3, 0.2])
        assert abs_error_max(truth, truth, 0) == 0.0
        assert abs_error_mean(truth, truth, 0) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            abs_error_max(np.zeros(3), np.zeros(4), 0)
        with pytest.raises(EvaluationError):
            abs_error_mean(np.zeros(3), np.zeros(4), 0)

    def test_single_node(self):
        assert abs_error_mean(np.array([1.0]), np.array([1.0]), 0) == 0.0


class TestPrecision:
    def test_perfect(self):
        truth = np.array([1.0, 0.9, 0.8, 0.1, 0.0])
        assert precision_at_k([1, 2], truth, k=2, query=0) == 1.0

    def test_partial(self):
        truth = np.array([1.0, 0.9, 0.8, 0.1, 0.0])
        assert precision_at_k([1, 3], truth, k=2, query=0) == 0.5

    def test_tie_tolerance(self):
        # nodes 2 and 3 tie at the k-th score: either counts as correct
        truth = np.array([1.0, 0.9, 0.5, 0.5, 0.0])
        assert precision_at_k([1, 2], truth, k=2, query=0) == 1.0
        assert precision_at_k([1, 3], truth, k=2, query=0) == 1.0

    def test_query_in_list_not_counted(self):
        truth = np.array([1.0, 0.9, 0.8])
        assert precision_at_k([0, 1], truth, k=2, query=0) == 0.5

    def test_empty_returned(self):
        truth = np.array([1.0, 0.5, 0.2])
        assert precision_at_k([], truth, k=2, query=0) == 0.0

    def test_k_too_large(self):
        with pytest.raises(EvaluationError):
            precision_at_k([1], np.array([1.0, 0.5]), k=5, query=0)

    def test_duplicates_rejected(self):
        with pytest.raises(EvaluationError):
            precision_at_k([1, 1], np.array([1.0, 0.5, 0.2]), k=2, query=0)


class TestNdcg:
    def test_ideal_ordering_is_one(self):
        truth = np.array([1.0, 0.9, 0.5, 0.2, 0.0])
        assert ndcg_at_k([1, 2, 3], truth, k=3, query=0) == pytest.approx(1.0)

    def test_hand_computed(self):
        truth = np.array([1.0, 0.8, 0.4])
        # returned [2, 1]: DCG = (2^0.4-1)/log2(2) + (2^0.8-1)/log2(3)
        dcg = (2**0.4 - 1) / 1.0 + (2**0.8 - 1) / np.log2(3)
        z = (2**0.8 - 1) / 1.0 + (2**0.4 - 1) / np.log2(3)
        assert ndcg_at_k([2, 1], truth, k=2, query=0) == pytest.approx(dcg / z)

    def test_worse_ordering_scores_lower(self):
        truth = np.array([1.0, 0.9, 0.5, 0.2, 0.1])
        good = ndcg_at_k([1, 2, 3], truth, k=3, query=0)
        bad = ndcg_at_k([4, 3, 2], truth, k=3, query=0)
        assert bad < good

    def test_all_zero_truth_gives_one(self):
        truth = np.zeros(4)
        assert ndcg_at_k([1, 2], truth, k=2, query=0) == 1.0

    def test_query_in_list_rejected(self):
        with pytest.raises(EvaluationError):
            ndcg_at_k([0, 1], np.array([1.0, 0.5, 0.2]), k=2, query=0)

    def test_bounds(self, rng):
        truth = rng.random(20)
        truth[0] = 1.0
        returned = rng.permutation(np.arange(1, 20))[:5]
        value = ndcg_at_k(returned, truth, k=5, query=0)
        assert 0.0 <= value <= 1.0 + 1e-12


class TestKendallTau:
    def test_perfect_order(self):
        truth = np.array([1.0, 0.9, 0.5, 0.2])
        assert kendall_tau([1, 2, 3], truth) == 1.0

    def test_reversed_order(self):
        truth = np.array([1.0, 0.9, 0.5, 0.2])
        assert kendall_tau([3, 2, 1], truth) == -1.0

    def test_single_swap(self):
        truth = np.array([1.0, 0.9, 0.5, 0.2])
        # [2, 1, 3]: pairs (2,1) discordant, (2,3) and (1,3) concordant
        assert kendall_tau([2, 1, 3], truth) == pytest.approx((2 - 1) / 3)

    def test_ties_are_neutral(self):
        truth = np.array([1.0, 0.5, 0.5, 0.2])
        # pair (1, 2) is tied -> 0; pairs with 3 concordant -> (2 - 0) / 3
        assert kendall_tau([1, 2, 3], truth) == pytest.approx(2 / 3)

    def test_short_lists(self):
        truth = np.array([1.0, 0.5])
        assert kendall_tau([1], truth) == 1.0
        assert kendall_tau([], truth) == 1.0

    def test_query_check(self):
        with pytest.raises(EvaluationError):
            kendall_tau([0, 1], np.array([1.0, 0.5]), query=0)

    def test_range(self, rng):
        truth = rng.random(30)
        for _ in range(10):
            returned = rng.permutation(30)[:8]
            assert -1.0 <= kendall_tau(returned, truth) <= 1.0
