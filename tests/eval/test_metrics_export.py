"""metrics_export: one Prometheus formatter for /metrics and JSON reports."""

import pytest

from repro.api.service import ServiceStats
from repro.errors import EvaluationError
from repro.eval.metrics_export import (
    flatten_metrics,
    render_prometheus,
    sanitize_metric_name,
    service_metrics,
)


class TestSanitize:
    def test_valid_name_unchanged(self):
        assert sanitize_metric_name("cache_hit_rate") == "cache_hit_rate"

    def test_invalid_chars_become_underscores(self):
        assert sanitize_metric_name("p95 (ms)") == "p95__ms_"

    def test_leading_digit_gets_prefix(self):
        assert sanitize_metric_name("95th") == "_95th"

    def test_unsalvageable_name_raises(self):
        with pytest.raises(EvaluationError):
            sanitize_metric_name("")


class TestFlatten:
    def test_merges_groups_and_prefixes_kwargs(self):
        flat = flatten_metrics(
            {"queries": 3}, {"qps": 1.5}, cache={"hits": 2, "hit_rate": 0.5}
        )
        assert flat == {
            "queries": 3.0, "qps": 1.5, "cache_hits": 2.0, "cache_hit_rate": 0.5,
        }

    def test_none_groups_are_skipped(self):
        assert flatten_metrics(None, {"a": 1}, cache=None) == {"a": 1.0}

    def test_non_numeric_value_raises(self):
        with pytest.raises(EvaluationError, match="numeric"):
            flatten_metrics({"method": "probesim"})

    def test_bool_is_rejected_not_coerced(self):
        with pytest.raises(EvaluationError, match="numeric"):
            flatten_metrics({"enabled": True})

    def test_non_finite_value_raises(self):
        with pytest.raises(EvaluationError, match="finite"):
            flatten_metrics({"qps": float("inf")})


class TestServiceMetrics:
    def test_flattens_stats_cache_and_extra(self):
        stats = ServiceStats(queries=7, batches=2, updates_applied=1)
        flat = service_metrics(
            stats,
            cache={"hits": 4, "misses": 3, "hit_rate": 4 / 7, "size": 5,
                   "evictions": 0, "invalidations": 0},
            extra={"http_requests": 9},
        )
        assert flat["queries"] == 7.0
        assert flat["updates"] == 1.0
        assert flat["cache_hits"] == 4.0
        assert flat["cache_hit_rate"] == pytest.approx(4 / 7)
        assert flat["http_requests"] == 9.0

    def test_every_stats_counter_is_numeric(self):
        # as_row() must stay exposition-safe: no strings allowed to creep in
        service_metrics(ServiceStats())


class TestRenderPrometheus:
    def test_exposition_shape(self):
        text = render_prometheus({"queries": 3, "qps": 2.5}, namespace="repro")
        lines = text.splitlines()
        assert "# HELP repro_qps qps (repro serving counter)" in lines
        assert "# TYPE repro_qps gauge" in lines
        assert "repro_qps 2.5" in lines
        assert "repro_queries 3" in lines  # integral floats render as ints
        assert text.endswith("\n")

    def test_output_is_sorted_and_deterministic(self):
        metrics = {"b": 1, "a": 2, "c": 3}
        text = render_prometheus(metrics)
        samples = [line for line in text.splitlines() if not line.startswith("#")]
        assert samples == ["repro_a 2", "repro_b 1", "repro_c 3"]
        assert text == render_prometheus(dict(reversed(list(metrics.items()))))

    def test_custom_help_and_namespace(self):
        text = render_prometheus(
            {"shed": 1}, namespace="sim", help_texts={"shed": "requests shed"}
        )
        assert "# HELP sim_shed requests shed" in text

    def test_empty_metrics_render_empty(self):
        assert render_prometheus({}) == ""

    def test_float_values_round_trip(self):
        value = 0.123456789012345678
        text = render_prometheus({"x": value}, namespace="")
        sample = [ln for ln in text.splitlines() if ln.startswith("x ")][0]
        assert float(sample.split()[1]) == value
