"""Tests for the pooling protocol (§6.2)."""

import numpy as np
import pytest

from repro.core.results import TopKResult
from repro.errors import EvaluationError
from repro.eval.pooling import exact_expert, monte_carlo_expert, pool_evaluate


def _topk(nodes, scores, query=0, method="m"):
    return TopKResult(
        query=query,
        nodes=np.array(nodes, dtype=np.int64),
        scores=np.array(scores, dtype=np.float64),
        method=method,
    )


def _const_expert(mapping):
    def expert(query, nodes):
        return np.array([mapping.get(n, 0.0) for n in nodes], dtype=np.float64)

    return expert


class TestPoolEvaluate:
    def test_perfect_method_scores_one(self):
        results = {
            "good": _topk([1, 2], [0.9, 0.8]),
            "bad": _topk([3, 4], [0.9, 0.8]),
        }
        expert = _const_expert({1: 0.9, 2: 0.8, 3: 0.1, 4: 0.05})
        ev = pool_evaluate(results, expert, k=2)
        assert ev.precision["good"] == 1.0
        assert ev.precision["bad"] == 0.0
        assert ev.ndcg["good"] == pytest.approx(1.0)
        assert ev.truth_nodes == (1, 2)

    def test_pool_is_union_of_lists(self):
        results = {
            "a": _topk([1, 2], [0.5, 0.4]),
            "b": _topk([2, 3], [0.5, 0.4]),
        }
        ev = pool_evaluate(results, _const_expert({1: 0.3, 2: 0.2, 3: 0.1}), k=2)
        assert set(ev.pool) == {1, 2, 3}

    def test_tau_reflects_ordering(self):
        expert = _const_expert({1: 0.9, 2: 0.5, 3: 0.1})
        results = {
            "sorted": _topk([1, 2, 3], [0.9, 0.5, 0.1]),
            "reversed": _topk([3, 2, 1], [0.9, 0.5, 0.1]),
        }
        ev = pool_evaluate(results, expert, k=3)
        assert ev.tau["sorted"] == 1.0
        assert ev.tau["reversed"] == -1.0

    def test_default_k_is_min(self):
        results = {
            "a": _topk([1, 2, 3], [0.5, 0.4, 0.3]),
            "b": _topk([2, 3], [0.5, 0.4]),
        }
        ev = pool_evaluate(results, _const_expert({1: 0.3, 2: 0.2, 3: 0.1}))
        assert ev.k == 2

    def test_mismatched_queries_rejected(self):
        results = {
            "a": _topk([1], [0.5], query=0),
            "b": _topk([2], [0.5], query=1),
        }
        with pytest.raises(EvaluationError):
            pool_evaluate(results, _const_expert({}))

    def test_empty_results_rejected(self):
        with pytest.raises(EvaluationError):
            pool_evaluate({}, _const_expert({}))

    def test_bad_expert_shape_rejected(self):
        results = {"a": _topk([1, 2], [0.5, 0.4])}

        def broken(query, nodes):
            return np.zeros(1)

        with pytest.raises(EvaluationError):
            pool_evaluate(results, broken, k=2)


class TestExperts:
    def test_exact_expert_reads_ground_truth(self, toy_truth):
        expert = exact_expert(toy_truth)
        scores = expert(0, [3, 4])
        assert scores[0] == pytest.approx(toy_truth.pair(0, 3))
        assert scores[1] == pytest.approx(toy_truth.pair(0, 4))

    def test_monte_carlo_expert_close_to_truth(self, toy, toy_truth):
        from repro.datasets import TOY_DECAY

        expert = monte_carlo_expert(toy, c=TOY_DECAY, eps=0.02, delta=0.05, seed=3)
        scores = expert(0, [3, 4])
        assert scores[0] == pytest.approx(toy_truth.pair(0, 3), abs=0.02)
        assert scores[1] == pytest.approx(toy_truth.pair(0, 4), abs=0.02)


class TestEndToEndPooling:
    def test_pooling_ranks_probesim_above_tsf_on_toy(self, toy, toy_truth):
        """The Figure 8-10 pipeline in miniature: ProbeSim at a tight budget
        must dominate a deliberately under-sampled TSF."""
        from repro import ProbeSim, TSFIndex
        from repro.datasets import TOY_DECAY

        query = 0
        k = 3
        probesim = ProbeSim(toy, c=TOY_DECAY, eps_a=0.02, delta=0.01, seed=1)
        tsf = TSFIndex(toy, c=TOY_DECAY, rg=5, rq=1, seed=2)
        results = {
            "probesim": probesim.topk(query, k),
            "tsf": tsf.topk(query, k),
        }
        ev = pool_evaluate(results, exact_expert(toy_truth), k=k)
        assert ev.precision["probesim"] >= ev.precision["tsf"]
        assert ev.ndcg["probesim"] >= 0.95
