"""Tests for query-node sampling."""

import pytest

from repro.errors import EvaluationError
from repro.eval.queries import sample_query_nodes
from repro.graph import DiGraph


class TestSampleQueryNodes:
    def test_nonzero_in_degree_default(self, tiny_wiki):
        nodes = sample_query_nodes(tiny_wiki, 30, seed=1)
        assert len(nodes) == 30
        for node in nodes:
            assert tiny_wiki.in_degree(node) > 0

    def test_distinct(self, tiny_wiki):
        nodes = sample_query_nodes(tiny_wiki, 50, seed=2)
        assert len(set(nodes)) == len(nodes)

    def test_deterministic(self, tiny_wiki):
        assert sample_query_nodes(tiny_wiki, 10, seed=3) == sample_query_nodes(
            tiny_wiki, 10, seed=3
        )

    def test_clamps_to_eligible_count(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])  # only nodes 1, 2 eligible
        nodes = sample_query_nodes(g, 10, seed=4)
        assert sorted(nodes) == [1, 2]

    def test_allow_zero_in_degree(self):
        g = DiGraph.from_edges([(0, 1)])
        nodes = sample_query_nodes(
            g, 2, seed=5, require_nonzero_in_degree=False
        )
        assert sorted(nodes) == [0, 1]

    def test_no_eligible_nodes(self):
        g = DiGraph(3)  # no edges at all
        with pytest.raises(EvaluationError):
            sample_query_nodes(g, 1, seed=6)

    def test_invalid_count(self, tiny_wiki):
        with pytest.raises(EvaluationError):
            sample_query_nodes(tiny_wiki, 0, seed=7)
