"""Tests for ASCII table rendering."""

from repro.eval.reporting import format_table


class TestFormatTable:
    def test_basic_render(self):
        text = format_table([{"a": 1, "b": 2.5}], title="demo")
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert lines[1].startswith("a")
        assert "2.500" in text

    def test_columns_inferred_in_order(self):
        rows = [{"x": 1}, {"y": 2, "x": 3}]
        text = format_table(rows)
        header = text.splitlines()[0]
        assert header.index("x") < header.index("y")

    def test_explicit_columns(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_values_blank(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert text  # renders without KeyError

    def test_float_formats(self):
        text = format_table(
            [{"big": 12345.6, "mid": 3.14159, "small": 0.000123, "zero": 0.0}]
        )
        assert "12,345.6" in text
        assert "3.142" in text
        assert "0.000123" in text

    def test_bool_render(self):
        text = format_table([{"flag": True}, {"flag": False}])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        text = format_table([], columns=["a", "b"])
        assert "a" in text.splitlines()[0]

    def test_alignment(self):
        text = format_table([{"name": "x", "v": 1}, {"name": "longer", "v": 22}])
        lines = text.splitlines()
        assert len(lines[1]) >= len("name | v") - 1
        # separator row matches header width structure
        assert set(lines[1]) <= {"-", "+"}
