"""Tests for the experiment runner."""

import pytest

from repro import PowerMethod, ProbeSim
from repro.datasets import TOY_DECAY
from repro.errors import EvaluationError
from repro.eval.runner import MethodSpec, run_single_source, run_topk


class TestMethodSpec:
    def test_build_checks_interface(self):
        spec = MethodSpec("broken", lambda: object())
        with pytest.raises(EvaluationError):
            spec.build()

    def test_build_constructs_fresh(self, toy):
        spec = MethodSpec("ps", lambda: ProbeSim(toy, c=TOY_DECAY, eps_a=0.2, seed=1))
        assert spec.build() is not spec.build()


class TestRunSingleSource:
    def test_exact_method_has_zero_error(self, toy, toy_truth):
        outcomes = run_single_source(
            [MethodSpec("power", lambda: PowerMethod(toy, c=TOY_DECAY))],
            queries=[0, 1, 2],
            ground_truth=toy_truth,
        )
        assert outcomes[0].mean_abs_error < 1e-9
        assert len(outcomes[0].abs_errors) == 3

    def test_probesim_within_budget(self, toy, toy_truth):
        outcomes = run_single_source(
            [
                MethodSpec(
                    "probesim",
                    lambda: ProbeSim(toy, c=TOY_DECAY, eps_a=0.05, delta=0.01, seed=5),
                )
            ],
            queries=[0, 1],
            ground_truth=toy_truth,
        )
        assert outcomes[0].mean_abs_error <= 0.05

    def test_row_shape(self, toy, toy_truth):
        outcomes = run_single_source(
            [MethodSpec("power", lambda: PowerMethod(toy, c=TOY_DECAY))],
            queries=[0],
            ground_truth=toy_truth,
        )
        row = outcomes[0].as_row()
        assert row["method"] == "power"
        assert row["queries"] == 1
        assert "abs_error" in row and "query_time_s" in row

    def test_empty_queries_rejected(self, toy, toy_truth):
        with pytest.raises(EvaluationError):
            run_single_source([], queries=[], ground_truth=toy_truth)


class TestRunTopK:
    def test_exact_method_perfect_metrics(self, toy, toy_truth):
        outcomes = run_topk(
            [MethodSpec("power", lambda: PowerMethod(toy, c=TOY_DECAY))],
            queries=[0, 1],
            ground_truth=toy_truth,
            k=3,
        )
        assert outcomes[0].mean_precision == 1.0
        assert outcomes[0].mean_ndcg == pytest.approx(1.0)
        # tau treats tied true scores as neutral pairs, so even the exact
        # method cannot exceed 1 - ties/total (query 1's top-3 contains a
        # tied pair, costing 1/3); it must still be close to perfect.
        assert outcomes[0].mean_tau >= 0.8

    def test_methods_compared_on_same_queries(self, toy, toy_truth):
        outcomes = run_topk(
            [
                MethodSpec("power", lambda: PowerMethod(toy, c=TOY_DECAY)),
                MethodSpec(
                    "probesim",
                    lambda: ProbeSim(toy, c=TOY_DECAY, eps_a=0.05, delta=0.01, seed=9),
                ),
            ],
            queries=[0, 2, 4],
            ground_truth=toy_truth,
            k=3,
        )
        assert {o.method for o in outcomes} == {"power", "probesim"}
        assert all(len(o.precisions) == 3 for o in outcomes)
        # ProbeSim at eps 0.05 should be near-perfect on the toy graph
        probesim = next(o for o in outcomes if o.method == "probesim")
        assert probesim.mean_precision >= 0.6
        assert probesim.mean_ndcg >= 0.9

    def test_invalid_k(self, toy, toy_truth):
        with pytest.raises(EvaluationError):
            run_topk(
                [MethodSpec("power", lambda: PowerMethod(toy, c=TOY_DECAY))],
                queries=[0],
                ground_truth=toy_truth,
                k=0,
            )

    def test_row_shape(self, toy, toy_truth):
        outcomes = run_topk(
            [MethodSpec("power", lambda: PowerMethod(toy, c=TOY_DECAY))],
            queries=[0],
            ground_truth=toy_truth,
            k=2,
        )
        row = outcomes[0].as_row()
        assert {"method", "precision", "ndcg", "tau", "query_time_s"} <= set(row)
