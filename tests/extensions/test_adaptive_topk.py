"""Tests for the adaptive top-k extension."""

import numpy as np
import pytest

from repro.datasets import TOY_DECAY
from repro.errors import QueryError
from repro.extensions.adaptive_topk import AdaptiveTopK


class TestCorrectness:
    def test_top1_matches_truth_on_toy(self, toy, toy_truth):
        adaptive = AdaptiveTopK(toy, c=TOY_DECAY, eps_a=0.05, delta=0.01, seed=1)
        top = adaptive.topk(0, 1)
        assert int(top.nodes[0]) == int(toy_truth.topk_nodes(0, 1)[0])

    def test_topk_set_matches_full_engine(self, tiny_wiki, tiny_wiki_truth):
        """The adaptive set must agree with exact ground truth on the
        well-separated part of the ranking."""
        k = 5
        adaptive = AdaptiveTopK(tiny_wiki, eps_a=0.1, delta=0.05, seed=2)
        for query in (10, 50):
            top = adaptive.topk(query, k)
            true_row = tiny_wiki_truth.single_source(query)
            kth = tiny_wiki_truth.kth_score(query, k)
            # tie-tolerant correctness: every returned node's true score is
            # within 2*eps_a of the k-th best (statistical stopping gives set
            # correctness only up to the confidence radius at the boundary)
            for node in top.nodes.tolist():
                assert true_row[node] >= kth - 0.1

    def test_method_label(self, toy):
        adaptive = AdaptiveTopK(toy, c=TOY_DECAY, eps_a=0.1, seed=3)
        assert adaptive.topk(0, 2).method == "probesim-adaptive"

    def test_deterministic_given_seed(self, toy):
        a = AdaptiveTopK(toy, c=TOY_DECAY, eps_a=0.1, seed=4).topk(0, 3)
        b = AdaptiveTopK(toy, c=TOY_DECAY, eps_a=0.1, seed=4).topk(0, 3)
        assert a.nodes.tolist() == b.nodes.tolist()
        np.testing.assert_array_equal(a.scores, b.scores)


class TestAdaptivity:
    def test_easy_instance_stops_early(self, toy):
        """When eps_a is much tighter than the top-1 gap (0.131 vs 0.070),
        the stopping rule fires long before the Theorem 1 walk count.

        (At eps_a comparable to the gap, running to the cap is the correct
        behaviour — the confidence radius and the gap are the same scale.)
        """
        adaptive = AdaptiveTopK(toy, c=TOY_DECAY, eps_a=0.015, delta=0.01, seed=5)
        adaptive.topk(0, 1)
        full_walks = adaptive.config.walk_count(8)
        assert adaptive.last_stopped_early
        assert adaptive.last_walks_used < full_walks / 2

    def test_tied_boundary_runs_to_cap(self, toy):
        """Toy nodes g and h share their in-neighbourhood, so s(a,g) = s(a,h)
        exactly; with that tie sitting on the k boundary the stopping rule
        can never fire and the walk cap is reached."""
        # ranking from a: d > e > g = h > c ... -> k=3 puts the g/h tie on
        # the boundary (order[2] vs order[3]).
        adaptive = AdaptiveTopK(toy, c=TOY_DECAY, eps_a=0.1, delta=0.1, seed=6)
        adaptive.topk(0, 3)
        assert not adaptive.last_stopped_early
        assert adaptive.last_walks_used == adaptive.config.walk_count(8)

    def test_walks_used_never_exceed_cap(self, tiny_wiki):
        adaptive = AdaptiveTopK(tiny_wiki, eps_a=0.15, delta=0.1, seed=7)
        adaptive.topk(10, 3)
        assert adaptive.last_walks_used <= adaptive.config.walk_count(
            tiny_wiki.num_nodes
        )

    def test_geometric_batching(self, toy):
        """Walk totals follow initial_batch * (2^r - 1) until stop/cap."""
        adaptive = AdaptiveTopK(toy, c=TOY_DECAY, eps_a=0.05, delta=0.01,
                                seed=8, initial_batch=32)
        adaptive.topk(0, 1)
        used = adaptive.last_walks_used
        # 32, 96, 224, 480, ... (sums of doubling batches)
        sums = {32 * (2**r - 1) for r in range(1, 15)}
        cap = adaptive.config.walk_count(8)
        assert used in sums or used == cap


class TestValidation:
    def test_bad_k(self, toy):
        adaptive = AdaptiveTopK(toy, c=TOY_DECAY, eps_a=0.1, seed=9)
        with pytest.raises(QueryError):
            adaptive.topk(0, 0)
        with pytest.raises(QueryError):
            adaptive.topk(0, 8)  # k must be < n

    def test_bad_query(self, toy):
        with pytest.raises(QueryError):
            AdaptiveTopK(toy, c=TOY_DECAY, eps_a=0.1, seed=10).topk(99, 1)

    def test_bad_initial_batch(self, toy):
        with pytest.raises(QueryError):
            AdaptiveTopK(toy, initial_batch=0)

    def test_repr(self, toy):
        assert "AdaptiveTopK" in repr(AdaptiveTopK(toy, c=TOY_DECAY, eps_a=0.1))
