"""Tests for the walk-cache lightweight index (§7 future-work extension)."""

import numpy as np
import pytest

from repro.datasets import TOY_DECAY
from repro.errors import QueryError
from repro.eval.metrics import abs_error_max
from repro.extensions.walk_index import WalkIndex
from repro.graph import EdgeUpdate


class TestCaching:
    def test_accuracy_matches_engine_guarantee(self, toy, toy_truth):
        index = WalkIndex(toy, c=TOY_DECAY, eps_a=0.05, delta=0.01, seed=2)
        for query in range(4):
            result = index.single_source(query)
            err = abs_error_max(result.scores, toy_truth.single_source(query), query)
            assert err <= 0.05

    def test_repeated_query_hits_cache(self, toy):
        index = WalkIndex(toy, c=TOY_DECAY, eps_a=0.1, seed=3)
        index.single_source(0)
        assert index.hit_rate == 0.0
        index.single_source(0)
        assert index.hit_rate == 0.5
        assert index.num_cached == 1

    def test_cached_query_is_deterministic(self, toy):
        index = WalkIndex(toy, c=TOY_DECAY, eps_a=0.1, seed=4)
        first = index.single_source(0)
        second = index.single_source(0)
        np.testing.assert_array_equal(first.scores, second.scores)

    def test_cached_query_skips_sampling(self, tiny_wiki):
        index = WalkIndex(tiny_wiki, eps_a=0.15, delta=0.1, seed=5)
        index.single_source(10)
        rng_state_before = index.engine._rng.bit_generator.state
        index.single_source(10)  # cache hit: no walk sampling -> RNG untouched
        assert index.engine._rng.bit_generator.state == rng_state_before
        assert index._hits == 1

    def test_warm_prepopulates(self, toy):
        index = WalkIndex(toy, c=TOY_DECAY, eps_a=0.1, seed=6)
        index.warm([0, 1, 2])
        assert index.num_cached == 3
        index.single_source(1)
        assert index.hit_rate > 0.0

    def test_topk(self, toy, toy_truth):
        index = WalkIndex(toy, c=TOY_DECAY, eps_a=0.02, delta=0.01, seed=7)
        top = index.topk(0, 3)
        assert top.nodes[0] == 3  # d per Table 2
        with pytest.raises(QueryError):
            index.topk(0, 0)

    def test_method_label(self, toy):
        result = WalkIndex(toy, c=TOY_DECAY, eps_a=0.1, seed=8).single_source(0)
        assert result.method == "probesim-walkindex"


class TestInvalidation:
    def test_update_evicts_touched_trees(self, toy):
        graph = toy.copy()
        index = WalkIndex(graph, c=TOY_DECAY, eps_a=0.1, seed=9)
        index.single_source(0)  # walks from a pass through b (its in-edge)
        assert index.num_cached == 1
        # a's walks visit node b with overwhelming probability; an update
        # targeting b must evict the cached tree for query 0
        graph.add_edge(5, 1)
        index.apply_update(EdgeUpdate("insert", 5, 1))
        assert index.num_cached == 0

    def test_update_keeps_untouched_trees(self):
        from repro.graph import DiGraph

        # two disconnected 2-cycles: updates in one cannot touch the other
        g = DiGraph.from_edges([(0, 1), (1, 0), (2, 3), (3, 2)])
        g.add_node()  # node 4, isolated source for the new edge
        index = WalkIndex(g, c=0.6, eps_a=0.2, seed=10)
        index.single_source(0)
        g.add_edge(4, 2)
        index.apply_update(EdgeUpdate("insert", 4, 2))
        assert index.num_cached == 1  # query-0 walks never visit node 2

    def test_post_update_queries_are_correct(self, toy):
        from repro.eval.ground_truth import compute_ground_truth

        graph = toy.copy()
        index = WalkIndex(graph, c=TOY_DECAY, eps_a=0.05, delta=0.01, seed=11)
        index.single_source(0)
        graph.remove_edge(4, 1)  # e -> b
        index.apply_update(EdgeUpdate("delete", 4, 1))
        truth = compute_ground_truth(graph, c=TOY_DECAY, iterations=80)
        result = index.single_source(0)
        assert abs_error_max(result.scores, truth.single_source(0), 0) <= 0.05

    def test_invalidate_all(self, toy):
        index = WalkIndex(toy, c=TOY_DECAY, eps_a=0.1, seed=12)
        index.warm([0, 1])
        index.invalidate_all()
        assert index.num_cached == 0

    def test_index_bytes_grows_with_cache(self, toy):
        index = WalkIndex(toy, c=TOY_DECAY, eps_a=0.1, seed=13)
        empty = index.index_bytes()
        index.warm([0, 1, 2, 3])
        assert index.index_bytes() > empty

    def test_payload_bytes_counts_tree_nodes(self, toy):
        index = WalkIndex(toy, c=TOY_DECAY, eps_a=0.1, seed=13)
        assert index.payload_bytes() == 0
        index.warm([0])
        tree_nodes = index._trees[0].num_tree_nodes() + 1
        assert index.payload_bytes() >= 16 * tree_nodes
        assert index.payload_bytes() < index.index_bytes()  # no object headers

    def test_repr(self, toy):
        assert "WalkIndex" in repr(WalkIndex(toy, c=TOY_DECAY, eps_a=0.1, seed=14))
