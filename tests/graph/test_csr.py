"""Unit tests for the frozen CSR snapshot and its sparse operators."""

import numpy as np
import pytest

from repro.errors import GraphError, NodeNotFoundError
from repro.graph import CSRGraph, DiGraph
from repro.graph.csr import as_csr


class TestRoundTrip:
    def test_adjacency_matches_digraph(self, toy, toy_csr):
        for node in toy.nodes():
            assert sorted(toy_csr.out_neighbors(node).tolist()) == sorted(
                toy.out_neighbors(node)
            )
            assert sorted(toy_csr.in_neighbors(node).tolist()) == sorted(
                toy.in_neighbors(node)
            )

    def test_degrees_match(self, toy, toy_csr):
        for node in toy.nodes():
            assert toy_csr.in_degree(node) == toy.in_degree(node)
            assert toy_csr.out_degree(node) == toy.out_degree(node)

    def test_to_digraph_round_trip(self, toy, toy_csr):
        assert toy_csr.to_digraph() == toy

    def test_edges_iteration(self, toy, toy_csr):
        assert sorted(toy_csr.edges()) == sorted(toy.edges())

    def test_from_edges_constructor(self):
        csr = CSRGraph.from_edges([(0, 1), (1, 2)])
        assert csr.num_nodes == 3
        assert csr.num_edges == 2

    def test_snapshot_is_frozen_after_mutation(self):
        g = DiGraph.from_edges([(0, 1)])
        csr = CSRGraph.from_digraph(g)
        g.add_edge(1, 0)
        assert csr.num_edges == 1
        assert not np.any(csr.in_neighbors(0))

    def test_arrays_read_only(self, toy_csr):
        with pytest.raises(ValueError):
            toy_csr.out_indices[0] = 99

    def test_empty_graph(self):
        csr = CSRGraph.from_digraph(DiGraph(4))
        assert csr.num_edges == 0
        assert csr.forward_operator.nnz == 0

    def test_node_bounds_checked(self, toy_csr):
        with pytest.raises(NodeNotFoundError):
            toy_csr.out_neighbors(100)


class TestOperators:
    def test_forward_operator_entries(self, toy, toy_csr):
        P_hat = toy_csr.forward_operator.toarray()
        for s, t in toy.edges():
            assert P_hat[s, t] == pytest.approx(1.0 / toy.in_degree(t))
        assert P_hat.sum() == pytest.approx(
            sum(1.0 / toy.in_degree(t) for _, t in toy.edges())
        )

    def test_transition_columns_stochastic(self, toy_csr):
        P = toy_csr.transition.toarray()
        col_sums = P.sum(axis=0)
        for node in range(toy_csr.num_nodes):
            if toy_csr.in_degree(node) > 0:
                assert col_sums[node] == pytest.approx(1.0)
            else:
                assert col_sums[node] == 0.0

    def test_backward_operator_is_transpose(self, toy_csr):
        fwd = toy_csr.forward_operator.toarray()
        bwd = toy_csr.backward_operator.toarray()
        np.testing.assert_allclose(bwd, fwd.T)

    def test_inv_in_degrees(self, toy, toy_csr):
        inv = toy_csr.inv_in_degrees
        for node in toy.nodes():
            deg = toy.in_degree(node)
            expected = 1.0 / deg if deg else 0.0
            assert inv[node] == pytest.approx(expected)


class TestSampling:
    def test_random_in_neighbor_valid(self, toy, toy_csr, rng):
        for _ in range(50):
            neighbor = toy_csr.random_in_neighbor(5, rng)
            assert neighbor in toy.in_neighbors(5)

    def test_random_in_neighbor_none(self, rng):
        csr = CSRGraph.from_edges([(0, 1)])
        assert csr.random_in_neighbor(0, rng) is None

    def test_sample_in_neighbors_vectorized(self, toy, toy_csr, rng):
        nodes = np.array([5, 5, 5, 0, 0], dtype=np.int64)
        sampled = toy_csr.sample_in_neighbors(nodes, rng)
        for node, neighbor in zip(nodes.tolist(), sampled.tolist()):
            assert neighbor in toy.in_neighbors(node)

    def test_sample_in_neighbors_dead_end(self, rng):
        csr = CSRGraph.from_edges([(0, 1)])
        sampled = csr.sample_in_neighbors(np.array([0, 1]), rng)
        assert sampled[0] == -1
        assert sampled[1] == 0

    def test_sample_in_neighbors_uniform(self, rng):
        csr = CSRGraph.from_edges([(1, 0), (2, 0), (3, 0)])
        sampled = csr.sample_in_neighbors(np.zeros(6000, dtype=np.int64), rng)
        counts = np.bincount(sampled, minlength=4)
        assert counts[0] == 0
        for neighbor in (1, 2, 3):
            assert 1700 < counts[neighbor] < 2300

    def test_sample_in_neighbors_empty_input(self, toy_csr, rng):
        out = toy_csr.sample_in_neighbors(np.empty(0, dtype=np.int64), rng)
        assert len(out) == 0


class TestAsCsr:
    def test_passthrough(self, toy_csr):
        assert as_csr(toy_csr) is toy_csr

    def test_converts_digraph(self, toy):
        assert isinstance(as_csr(toy), CSRGraph)

    def test_rejects_other_types(self):
        with pytest.raises(GraphError):
            as_csr([(0, 1)])

    def test_payload_bytes_positive(self, toy_csr):
        assert toy_csr.payload_bytes() > 0

    def test_repr(self, toy_csr):
        assert "CSRGraph" in repr(toy_csr)
