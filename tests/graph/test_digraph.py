"""Unit tests for the mutable DiGraph substrate."""

import numpy as np
import pytest

from repro.errors import (
    DuplicateEdgeError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)
from repro.graph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph(0)
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_isolated_nodes(self):
        g = DiGraph(5)
        assert g.num_nodes == 5
        assert all(g.in_degree(v) == 0 for v in g.nodes())

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(-1)

    def test_from_edges_infers_node_count(self):
        g = DiGraph.from_edges([(0, 3), (2, 1)])
        assert g.num_nodes == 4
        assert g.num_edges == 2

    def test_from_edges_explicit_node_count(self):
        g = DiGraph.from_edges([(0, 1)], num_nodes=10)
        assert g.num_nodes == 10

    def test_from_edges_empty(self):
        g = DiGraph.from_edges([])
        assert g.num_nodes == 0

    def test_from_edges_rejects_duplicates(self):
        with pytest.raises(DuplicateEdgeError):
            DiGraph.from_edges([(0, 1), (0, 1)])

    def test_add_node_returns_new_id(self):
        g = DiGraph(2)
        assert g.add_node() == 2
        assert g.num_nodes == 3


class TestEdges:
    def test_add_edge_updates_both_directions(self):
        g = DiGraph(3)
        g.add_edge(0, 2)
        assert g.out_neighbors(0) == [2]
        assert g.in_neighbors(2) == [0]
        assert g.has_edge(0, 2)
        assert not g.has_edge(2, 0)

    def test_add_duplicate_edge_raises(self):
        g = DiGraph(2)
        g.add_edge(0, 1)
        with pytest.raises(DuplicateEdgeError):
            g.add_edge(0, 1)

    def test_self_loop_rejected(self):
        g = DiGraph(2)
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_unknown_endpoint_rejected(self):
        g = DiGraph(2)
        with pytest.raises(NodeNotFoundError):
            g.add_edge(0, 5)
        with pytest.raises(NodeNotFoundError):
            g.add_edge(-1, 0)

    def test_remove_edge(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1
        assert g.in_neighbors(1) == []

    def test_remove_absent_edge_raises(self):
        g = DiGraph(3)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 1)

    def test_remove_then_readd(self):
        g = DiGraph.from_edges([(0, 1)])
        g.remove_edge(0, 1)
        g.add_edge(0, 1)
        assert g.has_edge(0, 1)
        assert g.num_edges == 1

    def test_edges_iteration_matches_degrees(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (2, 1), (1, 0)])
        edges = sorted(g.edges())
        assert edges == [(0, 1), (0, 2), (1, 0), (2, 1)]
        assert g.out_degree(0) == 2
        assert g.in_degree(1) == 2


class TestDegreesAndSampling:
    def test_degrees(self, toy):
        # in-degrees pinned by the paper's worked example (DESIGN.md §6)
        expected_in = {0: 2, 1: 2, 2: 3, 3: 1, 4: 2, 5: 4, 6: 3, 7: 3}
        for node, deg in expected_in.items():
            assert toy.in_degree(node) == deg

    def test_random_in_neighbor_uniform(self, rng):
        g = DiGraph.from_edges([(1, 0), (2, 0), (3, 0)])
        counts = {1: 0, 2: 0, 3: 0}
        for _ in range(3000):
            counts[g.random_in_neighbor(0, rng)] += 1
        for count in counts.values():
            assert 800 < count < 1200  # ~1000 each; 6-sigma band

    def test_random_in_neighbor_none_for_source(self, rng):
        g = DiGraph.from_edges([(0, 1)])
        assert g.random_in_neighbor(0, rng) is None

    def test_degree_of_unknown_node_raises(self):
        g = DiGraph(1)
        with pytest.raises(NodeNotFoundError):
            g.in_degree(3)


class TestCopyReverseEquality:
    def test_copy_is_independent(self):
        g = DiGraph.from_edges([(0, 1)])
        clone = g.copy()
        clone.add_edge(1, 0)
        assert not g.has_edge(1, 0)
        assert clone.has_edge(1, 0)

    def test_reversed_flips_edges(self, toy):
        rev = toy.reversed()
        assert rev.num_edges == toy.num_edges
        for s, t in toy.edges():
            assert rev.has_edge(t, s)
        assert rev.in_degree(1) == toy.out_degree(1)

    def test_double_reverse_is_identity(self, toy):
        assert toy.reversed().reversed() == toy

    def test_equality(self):
        a = DiGraph.from_edges([(0, 1), (1, 2)])
        b = DiGraph.from_edges([(1, 2), (0, 1)])
        assert a == b
        b.add_edge(2, 0)
        assert a != b

    def test_equality_different_type(self):
        assert DiGraph(1) != "not a graph"

    def test_contains(self):
        g = DiGraph(3)
        assert 2 in g
        assert 3 not in g
        assert "x" not in g

    def test_repr(self):
        assert "num_nodes=2" in repr(DiGraph(2))
