"""Unit tests for edge update streams (the dynamic-graph workload)."""

import pytest

from repro.errors import DuplicateEdgeError, EdgeNotFoundError, GraphError
from repro.graph import DiGraph, EdgeUpdate, MutationSampler, apply_update, generate_update_stream
from repro.graph.dynamic import UpdateStream, apply_stream


class TestEdgeUpdate:
    def test_valid_kinds(self):
        EdgeUpdate("insert", 0, 1)
        EdgeUpdate("delete", 1, 0)

    def test_invalid_kind_rejected(self):
        with pytest.raises(GraphError):
            EdgeUpdate("upsert", 0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            EdgeUpdate("insert", 2, 2)


class TestGenerateStream:
    def test_stream_is_applicable_in_order(self, tiny_wiki):
        stream = generate_update_stream(tiny_wiki, 200, seed=1)
        g = tiny_wiki.copy()
        apply_stream(g, stream)  # raises if any op is invalid when applied

    def test_source_graph_untouched(self, tiny_wiki):
        before = tiny_wiki.copy()
        generate_update_stream(tiny_wiki, 100, seed=2)
        assert tiny_wiki == before

    def test_respects_insert_fraction(self, tiny_wiki):
        all_inserts = generate_update_stream(tiny_wiki, 100, insert_fraction=1.0, seed=3)
        assert all_inserts.num_inserts == 100
        assert all_inserts.num_deletes == 0

    def test_all_deletes(self, tiny_wiki):
        all_deletes = generate_update_stream(tiny_wiki, 50, insert_fraction=0.0, seed=4)
        assert all_deletes.num_deletes == 50

    def test_deterministic(self, tiny_wiki):
        a = generate_update_stream(tiny_wiki, 50, seed=5)
        b = generate_update_stream(tiny_wiki, 50, seed=5)
        assert list(a) == list(b)

    def test_requires_two_nodes(self):
        with pytest.raises(GraphError):
            generate_update_stream(DiGraph(1), 5, seed=1)

    def test_stream_container_protocol(self, tiny_wiki):
        stream = generate_update_stream(tiny_wiki, 10, seed=6)
        assert len(stream) == 10
        assert isinstance(stream[0], EdgeUpdate)
        assert stream.num_inserts + stream.num_deletes == 10
        assert "UpdateStream" in repr(stream)


class TestApply:
    def test_apply_insert(self):
        g = DiGraph(3)
        apply_update(g, EdgeUpdate("insert", 0, 2))
        assert g.has_edge(0, 2)

    def test_apply_delete(self):
        g = DiGraph.from_edges([(0, 1)])
        apply_update(g, EdgeUpdate("delete", 0, 1))
        assert not g.has_edge(0, 1)

    def test_apply_stream_returns_graph(self):
        g = DiGraph(3)
        stream = UpdateStream([EdgeUpdate("insert", 0, 1), EdgeUpdate("insert", 1, 2)])
        assert apply_stream(g, stream) is g
        assert g.num_edges == 2

    def test_edge_churn_preserves_simple_graph(self, tiny_wiki):
        g = tiny_wiki.copy()
        stream = generate_update_stream(g, 300, insert_fraction=0.5, seed=7)
        apply_stream(g, stream)
        seen = set()
        for edge in g.edges():
            assert edge not in seen
            seen.add(edge)
            assert edge[0] != edge[1]


class TestApplyEdgeCases:
    def test_empty_stream_is_a_noop(self):
        g = DiGraph.from_edges([(0, 1)])
        before = g.copy()
        assert apply_stream(g, UpdateStream([])) is g
        assert g == before

    def test_duplicate_insert_raises_and_preserves_graph(self):
        g = DiGraph.from_edges([(0, 1)])
        before = g.copy()
        with pytest.raises(DuplicateEdgeError):
            apply_update(g, EdgeUpdate("insert", 0, 1))
        assert g == before

    def test_delete_of_missing_edge_raises_and_preserves_graph(self):
        g = DiGraph.from_edges([(0, 1)])
        before = g.copy()
        with pytest.raises(EdgeNotFoundError):
            apply_update(g, EdgeUpdate("delete", 1, 0))
        assert g == before

    def test_mid_stream_failure_keeps_valid_prefix_applied(self):
        """apply_stream applies in order: everything before the bad op
        lands, the bad op raises, nothing after it is applied."""
        g = DiGraph(4)
        stream = UpdateStream([
            EdgeUpdate("insert", 0, 1),
            EdgeUpdate("insert", 1, 2),
            EdgeUpdate("delete", 2, 3),   # invalid: edge never existed
            EdgeUpdate("insert", 2, 3),   # must not be applied
        ])
        with pytest.raises(EdgeNotFoundError):
            apply_stream(g, stream)
        assert g.has_edge(0, 1) and g.has_edge(1, 2)
        assert not g.has_edge(2, 3)
        assert g.num_edges == 2


class TestMutationSampler:
    def test_sampler_matches_generate_update_stream(self, tiny_wiki):
        """generate_update_stream is the sampler run end to end — same seed,
        same draws."""
        stream = generate_update_stream(tiny_wiki, 80, insert_fraction=0.4, seed=13)
        sampler = MutationSampler(tiny_wiki, insert_fraction=0.4, seed=13)
        assert list(stream) == sampler.sample_many(80)

    def test_scratch_graph_tracks_updates(self, tiny_wiki):
        sampler = MutationSampler(tiny_wiki, seed=1)
        update = sampler.sample()
        if update.kind == "insert":
            assert sampler.graph.has_edge(update.source, update.target)
        else:
            assert not sampler.graph.has_edge(update.source, update.target)
        assert tiny_wiki != sampler.graph  # the caller's graph was copied

    def test_delete_only_sampler_drains_then_inserts(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        sampler = MutationSampler(g, insert_fraction=0.0, seed=2)
        first, second = sampler.sample_many(2)
        assert {first.kind, second.kind} == {"delete"}
        # the scratch graph is empty now: the next draw must fall back to insert
        assert sampler.sample().kind == "insert"

    def test_too_small_graph_rejected(self):
        with pytest.raises(GraphError):
            MutationSampler(DiGraph(1), seed=1)

    def test_copy_false_mutates_caller_graph(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        sampler = MutationSampler(g, insert_fraction=1.0, seed=3, copy=False)
        sampler.sample()
        assert g.num_edges == 4  # mutated in place
