"""Unit tests for edge update streams (the dynamic-graph workload)."""

import pytest

from repro.errors import GraphError
from repro.graph import DiGraph, EdgeUpdate, apply_update, generate_update_stream
from repro.graph.dynamic import UpdateStream, apply_stream


class TestEdgeUpdate:
    def test_valid_kinds(self):
        EdgeUpdate("insert", 0, 1)
        EdgeUpdate("delete", 1, 0)

    def test_invalid_kind_rejected(self):
        with pytest.raises(GraphError):
            EdgeUpdate("upsert", 0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            EdgeUpdate("insert", 2, 2)


class TestGenerateStream:
    def test_stream_is_applicable_in_order(self, tiny_wiki):
        stream = generate_update_stream(tiny_wiki, 200, seed=1)
        g = tiny_wiki.copy()
        apply_stream(g, stream)  # raises if any op is invalid when applied

    def test_source_graph_untouched(self, tiny_wiki):
        before = tiny_wiki.copy()
        generate_update_stream(tiny_wiki, 100, seed=2)
        assert tiny_wiki == before

    def test_respects_insert_fraction(self, tiny_wiki):
        all_inserts = generate_update_stream(tiny_wiki, 100, insert_fraction=1.0, seed=3)
        assert all_inserts.num_inserts == 100
        assert all_inserts.num_deletes == 0

    def test_all_deletes(self, tiny_wiki):
        all_deletes = generate_update_stream(tiny_wiki, 50, insert_fraction=0.0, seed=4)
        assert all_deletes.num_deletes == 50

    def test_deterministic(self, tiny_wiki):
        a = generate_update_stream(tiny_wiki, 50, seed=5)
        b = generate_update_stream(tiny_wiki, 50, seed=5)
        assert list(a) == list(b)

    def test_requires_two_nodes(self):
        with pytest.raises(GraphError):
            generate_update_stream(DiGraph(1), 5, seed=1)

    def test_stream_container_protocol(self, tiny_wiki):
        stream = generate_update_stream(tiny_wiki, 10, seed=6)
        assert len(stream) == 10
        assert isinstance(stream[0], EdgeUpdate)
        assert stream.num_inserts + stream.num_deletes == 10
        assert "UpdateStream" in repr(stream)


class TestApply:
    def test_apply_insert(self):
        g = DiGraph(3)
        apply_update(g, EdgeUpdate("insert", 0, 2))
        assert g.has_edge(0, 2)

    def test_apply_delete(self):
        g = DiGraph.from_edges([(0, 1)])
        apply_update(g, EdgeUpdate("delete", 0, 1))
        assert not g.has_edge(0, 1)

    def test_apply_stream_returns_graph(self):
        g = DiGraph(3)
        stream = UpdateStream([EdgeUpdate("insert", 0, 1), EdgeUpdate("insert", 1, 2)])
        assert apply_stream(g, stream) is g
        assert g.num_edges == 2

    def test_edge_churn_preserves_simple_graph(self, tiny_wiki):
        g = tiny_wiki.copy()
        stream = generate_update_stream(g, 300, insert_fraction=0.5, seed=7)
        apply_stream(g, stream)
        seen = set()
        for edge in g.edges():
            assert edge not in seen
            seen.add(edge)
            assert edge[0] != edge[1]
