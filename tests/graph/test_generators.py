"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    chung_lu_graph,
    erdos_renyi_graph,
    locally_dense_graph,
    preferential_attachment_graph,
    web_graph,
)
from repro.graph.generators import undirected_as_digraph
from repro.graph.stats import compute_stats


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi_graph(50, 200, seed=1)
        assert g.num_nodes == 50
        assert g.num_edges == 200

    def test_no_self_loops_or_duplicates(self):
        g = erdos_renyi_graph(30, 120, seed=2)
        seen = set()
        for s, t in g.edges():
            assert s != t
            assert (s, t) not in seen
            seen.add((s, t))

    def test_deterministic_for_seed(self):
        a = erdos_renyi_graph(40, 100, seed=7)
        b = erdos_renyi_graph(40, 100, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = erdos_renyi_graph(40, 100, seed=7)
        b = erdos_renyi_graph(40, 100, seed=8)
        assert a != b

    def test_capacity_clamp(self):
        g = erdos_renyi_graph(3, 100, seed=1, allow_fewer=True)
        assert g.num_edges == 6  # 3 * 2

    def test_capacity_strict_raises(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(3, 100, seed=1, allow_fewer=False)

    def test_zero_edges(self):
        assert erdos_renyi_graph(5, 0, seed=1).num_edges == 0


class TestPreferentialAttachment:
    def test_shape(self):
        g = preferential_attachment_graph(200, 4, seed=3)
        assert g.num_nodes == 200
        # every node past the seed core emits up to 4 edges
        assert g.num_edges <= 4 * 200
        assert g.num_edges >= 4 * (200 - 4) * 0.9

    def test_heavy_tail(self):
        g = preferential_attachment_graph(500, 5, seed=4)
        stats = compute_stats(g)
        # preferential attachment concentrates in-degree: the max in-degree
        # must far exceed the mean, and the Gini must show real skew.
        assert stats.max_in_degree > 5 * stats.mean_in_degree
        assert stats.in_degree_gini > 0.4

    def test_out_degree_must_be_smaller_than_n(self):
        with pytest.raises(GraphError):
            preferential_attachment_graph(3, 3, seed=1)

    def test_deterministic(self):
        assert preferential_attachment_graph(100, 3, seed=9) == preferential_attachment_graph(
            100, 3, seed=9
        )


class TestChungLu:
    def test_degree_targeting(self):
        rng = np.random.default_rng(0)
        n = 300
        w = rng.pareto(2.0, size=n) + 1.0
        g = chung_lu_graph(w, w, seed=5)
        stats = compute_stats(g)
        # expected edge count is sum(w_in); allow broad Poisson slack
        assert 0.4 * w.sum() < g.num_edges < 2.0 * w.sum()
        assert stats.in_degree_gini > 0.2

    def test_zero_weights_give_empty_graph(self):
        g = chung_lu_graph(np.zeros(5), np.zeros(5), seed=1)
        assert g.num_edges == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GraphError):
            chung_lu_graph(np.ones(3), np.ones(4), seed=1)

    def test_negative_weights_rejected(self):
        with pytest.raises(GraphError):
            chung_lu_graph(np.array([-1.0, 1.0]), np.ones(2), seed=1)


class TestLocallyDense:
    def test_periphery_has_zero_in_degree(self):
        g = locally_dense_graph(300, core_fraction=0.3, seed=6)
        stats = compute_stats(g)
        # the defining Wiki-Vote property: a large zero-in-degree fraction
        assert stats.zero_in_degree_fraction > 0.5

    def test_core_is_dense(self):
        g = locally_dense_graph(300, core_fraction=0.3, core_out_degree=10, seed=6)
        core_size = int(300 * 0.3)
        core_edges = sum(1 for s, t in g.edges() if s < core_size and t < core_size)
        assert core_edges / core_size > 8  # dense: >8 internal edges per core node

    def test_all_nodes_present(self):
        g = locally_dense_graph(150, seed=7)
        assert g.num_nodes == 150

    def test_deterministic(self):
        assert locally_dense_graph(100, seed=1) == locally_dense_graph(100, seed=1)


class TestWebGraph:
    def test_bounded_out_degree(self):
        g = web_graph(400, out_degree=5, seed=8)
        assert max(g.out_degree(v) for v in g.nodes()) <= 5

    def test_heavy_tailed_in_degree(self):
        g = web_graph(600, out_degree=6, copy_probability=0.7, seed=9)
        stats = compute_stats(g)
        assert stats.max_in_degree > 4 * stats.mean_in_degree

    def test_deterministic(self):
        assert web_graph(200, seed=2) == web_graph(200, seed=2)


class TestUndirectedAsDigraph:
    def test_fully_reciprocal(self):
        g = undirected_as_digraph(120, attachment=3, seed=10)
        stats = compute_stats(g)
        assert stats.reciprocity == 1.0
        assert stats.is_undirected

    def test_even_edge_count(self):
        g = undirected_as_digraph(120, attachment=3, seed=10)
        assert g.num_edges % 2 == 0
