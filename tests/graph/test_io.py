"""Unit tests for SNAP-style edge-list I/O."""

import gzip

import pytest

from repro.errors import DatasetError
from repro.graph import DiGraph, read_edge_list, write_edge_list


class TestReadEdgeList:
    def test_basic_read(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n0 1\n1 2\n2 0\n")
        g = read_edge_list(path)
        assert g.num_nodes == 3
        assert sorted(g.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_relabels_sparse_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1000 5\n5 70\n")
        g = read_edge_list(path)
        assert g.num_nodes == 3
        # first-seen order: 1000 -> 0, 5 -> 1, 70 -> 2
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)

    def test_no_relabel_requires_dense_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path, relabel=False)
        assert g.num_nodes == 3
        assert g.has_edge(0, 1)

    def test_tabs_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\t1\n\n2\t1\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_deduplicates_by_default(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_duplicate_strict_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1\n")
        with pytest.raises(DatasetError):
            read_edge_list(path, deduplicate=False)

    def test_drops_self_loops_by_default(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_self_loop_strict_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("3 3\n")
        with pytest.raises(DatasetError):
            read_edge_list(path, drop_self_loops=False)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_non_integer_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_edge_list(tmp_path / "nope.txt")

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0 1\n1 0\n")
        assert read_edge_list(path).num_edges == 2


class TestWriteEdgeList:
    def test_round_trip(self, toy, tmp_path):
        path = tmp_path / "toy.txt"
        write_edge_list(toy, path)
        assert read_edge_list(path, relabel=False) == toy

    def test_round_trip_gzip(self, toy, tmp_path):
        path = tmp_path / "toy.txt.gz"
        write_edge_list(toy, path)
        assert read_edge_list(path, relabel=False) == toy

    def test_header_written_as_comments(self, tmp_path):
        g = DiGraph.from_edges([(0, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path, header="hello\nworld")
        lines = path.read_text().splitlines()
        assert lines[0] == "# hello"
        assert lines[1] == "# world"


class TestStreamingMemoryBound:
    def test_peak_memory_tracks_final_graph_not_edge_list(self, tmp_path):
        """read_edge_list streams: peak allocation must stay close to the
        retained graph, never a transient copy of the whole edge list.

        A regression to list-accumulate-then-build roughly doubles the
        peak (edge list + graph alive at once), so a 1.5x ratio bound
        catches it with margin while staying robust to allocator noise.
        """
        import tracemalloc

        path = tmp_path / "chain.txt"
        n = 20_000
        with open(path, "w", encoding="utf-8") as handle:
            for node in range(n - 1):
                handle.write(f"{node} {node + 1}\n")
                handle.write(f"{node + 1} {node}\n")

        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        graph = read_edge_list(path)
        retained = tracemalloc.get_traced_memory()[0] - before
        _, peak = tracemalloc.get_traced_memory()
        transient_peak = peak - before
        tracemalloc.stop()

        assert graph.num_edges == 2 * (n - 1)
        assert retained > 0
        assert transient_peak < 1.5 * retained, (
            f"peak {transient_peak} vs retained {retained}: "
            "read_edge_list is buffering the edge list"
        )
