"""Unit tests for graph statistics (Table 3 support)."""

import numpy as np
import pytest

from repro.graph import DiGraph, compute_stats
from repro.graph.stats import _gini


class TestComputeStats:
    def test_toy_counts(self, toy):
        stats = compute_stats(toy)
        assert stats.num_nodes == 8
        assert stats.num_edges == 20
        assert stats.mean_in_degree == pytest.approx(20 / 8)

    def test_zero_in_degree_fraction(self):
        g = DiGraph.from_edges([(0, 1), (2, 1), (3, 1)])
        stats = compute_stats(g)
        # nodes 0, 2, 3 have zero in-degree
        assert stats.zero_in_degree_fraction == pytest.approx(3 / 4)

    def test_reciprocity_full(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 1)])
        stats = compute_stats(g)
        assert stats.reciprocity == 1.0
        assert stats.is_undirected

    def test_reciprocity_partial(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (1, 2)])
        stats = compute_stats(g)
        assert stats.reciprocity == pytest.approx(2 / 3)
        assert not stats.is_undirected

    def test_empty_graph(self):
        stats = compute_stats(DiGraph(3))
        assert stats.num_edges == 0
        assert stats.reciprocity == 0.0
        assert not stats.is_undirected

    def test_as_row_keys(self, toy):
        row = compute_stats(toy).as_row()
        assert {"type", "n", "m", "avg_in_deg", "gini"} <= set(row)
        assert row["type"] == "directed"
        assert row["n"] == 8

    def test_max_degrees(self, toy):
        stats = compute_stats(toy)
        assert stats.max_in_degree == 4  # node f (c, d, e, h)
        assert stats.max_out_degree == 4  # nodes b, c, e each emit 4 edges


class TestGini:
    def test_uniform_is_zero(self):
        assert _gini(np.array([3, 3, 3, 3])) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        values = np.zeros(100)
        values[0] = 100.0
        assert _gini(values) > 0.95

    def test_empty_and_zero(self):
        assert _gini(np.array([])) == 0.0
        assert _gini(np.zeros(5)) == 0.0

    def test_bounds(self, rng):
        for _ in range(10):
            sample = rng.pareto(1.5, size=50)
            g = _gini(sample)
            assert 0.0 <= g <= 1.0
