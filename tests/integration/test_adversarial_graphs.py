"""Adversarial graph structures: shapes that historically break SimRank
implementations (dangling nodes, hubs, bipartite parity, disconnection,
cycles).  Every method must stay correct (or fail loudly) on all of them."""

import numpy as np
import pytest

from repro import MonteCarlo, PowerMethod, ProbeSim, SLINGIndex, TSFIndex, TopSim
from repro.datasets import TOY_DECAY
from repro.eval.metrics import abs_error_max
from repro.graph import DiGraph


def _assert_all_methods_agree(graph, query, c=0.6, tol=0.05, seed=0):
    """Exact truth vs every approximate method on one graph/query."""
    truth = PowerMethod(graph, c=c).single_source(query).scores
    estimates = {
        "probesim": ProbeSim(graph, c=c, eps_a=tol, delta=0.01, seed=seed)
        .single_source(query).scores,
        "topsim": TopSim(graph, c=c, depth=8).single_source(query).scores,
        "sling": SLINGIndex(graph, c=c, theta=0.0, depth=60, d_mode="exact")
        .single_source(query).scores,
    }
    for name, scores in estimates.items():
        err = abs_error_max(scores, truth, query)
        assert err <= tol + 1e-6, f"{name} err={err}"
    return truth


class TestDanglingAndSources:
    def test_query_with_no_in_edges_scores_zero_everywhere(self):
        # a source node's sqrt-c walk stops immediately: s(u, v) = 0 for all v
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 2), (2, 1)])
        truth = _assert_all_methods_agree(g, 0)
        assert truth[1] == 0.0 and truth[2] == 0.0

    def test_sink_node_still_similar(self):
        # node 3 has out-degree 0 (sink) but in-edges: similarities exist
        g = DiGraph.from_edges([(0, 3), (1, 3), (0, 1), (1, 0), (2, 0), (2, 1)])
        truth = _assert_all_methods_agree(g, 3)
        assert truth[3] == 1.0

    def test_isolated_node(self):
        g = DiGraph.from_edges([(0, 1), (1, 0)], num_nodes=3)  # node 2 isolated
        truth = _assert_all_methods_agree(g, 0)
        assert truth[2] == 0.0


class TestParityAndCycles:
    def test_directed_cycle_all_zero(self):
        """On a directed 4-cycle every node has exactly one in-neighbour, so
        walks from different nodes move in deterministic lockstep at a fixed
        distance — they can never meet, and every similarity is exactly 0."""
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        truth = _assert_all_methods_agree(g, 0, tol=0.05)
        assert truth[1] == 0.0
        assert truth[2] == 0.0
        assert truth[3] == 0.0

    def test_two_cycle(self):
        g = DiGraph.from_edges([(0, 1), (1, 0)])
        truth = _assert_all_methods_agree(g, 0)
        assert truth[1] == 0.0  # parity again: they never meet

    def test_self_similar_community(self):
        """Complete bipartite-ish: all of one side mutually similar."""
        left = [0, 1, 2]
        right = [3, 4]
        edges = [(l, r) for l in left for r in right]
        g = DiGraph.from_edges(edges)
        truth = _assert_all_methods_agree(g, 3)
        # 3 and 4 share in-neighbourhood {0,1,2}, but the left side has no
        # in-edges, so exactly s(3,4) = c/9 * (3*1 + 6*0) = c/3
        assert truth[4] == pytest.approx(0.6 / 3, abs=1e-9)


class TestHubs:
    def test_star_hub(self):
        """A hub with many low-in-degree out-neighbours: the shape that broke
        the naive 'probe scores sum to 1' assumption (DESIGN.md §6)."""
        n = 20
        edges = [(0, v) for v in range(1, n)] + [(v, 0) for v in range(1, n)]
        g = DiGraph.from_edges(edges)
        truth = _assert_all_methods_agree(g, 1, tol=0.06, seed=3)
        # all leaves share in-neighbourhood {0}: pairwise similarity = c
        for v in range(2, n):
            assert truth[v] == pytest.approx(0.6, abs=1e-9)

    def test_probesim_on_hub_with_randomized_probe(self):
        n = 20
        edges = [(0, v) for v in range(1, n)] + [(v, 0) for v in range(1, n)]
        g = DiGraph.from_edges(edges)
        truth = PowerMethod(g, c=0.6).single_source(1).scores
        result = ProbeSim(
            g, c=0.6, eps_a=0.1, delta=0.05, strategy="randomized", seed=4
        ).single_source(1)
        assert abs_error_max(result.scores, truth, 1) <= 0.1


class TestDisconnection:
    def test_components_have_zero_cross_similarity(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (2, 3), (3, 2)])
        truth = _assert_all_methods_agree(g, 0)
        assert truth[2] == 0.0 and truth[3] == 0.0

    def test_mc_and_tsf_respect_disconnection(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (2, 3), (3, 2)])
        mc = MonteCarlo(g, c=0.6, seed=5).single_source(0, num_walks=500)
        assert mc.scores[2] == 0.0 and mc.scores[3] == 0.0
        tsf = TSFIndex(g, c=0.6, rg=30, rq=3, seed=6).single_source(0)
        assert tsf.scores[2] == 0.0 and tsf.scores[3] == 0.0


class TestUndirectedToyDecay:
    def test_all_methods_on_toy_at_paper_decay(self, toy):
        _assert_all_methods_agree(toy, 0, c=TOY_DECAY, tol=0.05, seed=7)

    def test_all_methods_on_toy_at_c08(self, toy):
        # c = 0.8 is the other decay the SimRank literature uses
        _assert_all_methods_agree(toy, 0, c=0.8, tol=0.08, seed=8)


class TestNumericalEdges:
    def test_probesim_tiny_eps_does_not_overflow_walk_count(self, toy):
        engine = ProbeSim(toy, c=TOY_DECAY, eps_a=0.4, delta=0.4, seed=9)
        result = engine.single_source(0)
        assert result.num_walks >= 1

    def test_single_edge_graph(self):
        g = DiGraph.from_edges([(0, 1)])
        for method in (
            ProbeSim(g, eps_a=0.2, delta=0.1, seed=10),
            TopSim(g, depth=3),
            MonteCarlo(g, seed=11),
        ):
            if isinstance(method, MonteCarlo):
                result = method.single_source(1, num_walks=50)
            else:
                result = method.single_source(1)
            assert result.score(1) == 1.0
            assert result.scores[0] == 0.0  # node 0 has no in-edges

    def test_large_c_close_to_one(self, toy):
        """c -> 1 makes walks long; truncation must keep everything finite."""
        engine = ProbeSim(toy, c=0.95, eps_a=0.2, delta=0.1, seed=12, num_walks=200)
        result = engine.single_source(0)
        assert np.isfinite(result.scores).all()
        assert result.scores.max() <= 1.0 + 1e-9
