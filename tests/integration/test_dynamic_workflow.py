"""Integration tests for the dynamic-graph story (the paper's motivation):
index-free ProbeSim stays correct across updates with only an O(m) refresh,
TSF is maintained incrementally, and the WalkIndex extension invalidates
selectively."""

import numpy as np
import pytest

from repro import ProbeSim, TSFIndex
from repro.datasets import load_dataset
from repro.eval import abs_error_max, compute_ground_truth, sample_query_nodes
from repro.extensions import WalkIndex
from repro.graph import apply_update, generate_update_stream


@pytest.fixture()
def evolving_graph():
    return load_dataset("as", scale="tiny").copy()


class TestProbeSimUnderUpdates:
    def test_accuracy_maintained_across_stream(self, evolving_graph):
        graph = evolving_graph
        engine = ProbeSim(graph, eps_a=0.1, delta=0.05, seed=1)
        stream = generate_update_stream(graph, 60, seed=2)
        query = sample_query_nodes(graph, 1, seed=3)[0]
        for i, update in enumerate(stream):
            apply_update(graph, update)
            if i % 20 == 19:  # query at a few checkpoints along the stream
                engine.sync()
                truth = compute_ground_truth(graph, c=0.6, iterations=40)
                result = engine.single_source(query)
                assert abs_error_max(result.scores, truth.single_source(query), query) <= 0.1

    def test_refresh_cost_is_snapshot_only(self, evolving_graph):
        """refresh() must not allocate anything beyond the CSR arrays —
        no walks, no probes (that is the 'index-free' claim)."""
        graph = evolving_graph
        engine = ProbeSim(graph, eps_a=0.1, delta=0.05, seed=4)
        graph.add_edge(0, 5) if not graph.has_edge(0, 5) else None
        engine.sync()
        assert engine.graph.num_edges == graph.num_edges


class TestTSFIncrementalMaintenance:
    def test_incremental_matches_rebuild_distribution(self, evolving_graph):
        """After a stream of updates, incrementally-maintained one-way graphs
        must sample only current in-neighbours (the rebuild invariant)."""
        graph = evolving_graph
        index = TSFIndex(graph, rg=40, rq=4, seed=5)
        stream = generate_update_stream(graph, 80, seed=6)
        for update in stream:
            apply_update(graph, update)
            index.apply_update(update)
        for g in index._one_way:
            for node in range(graph.num_nodes):
                parent = int(g[node])
                if parent == -1:
                    # allowed only if in-degree is 0 OR the sampled parent was
                    # never invalidated... strictly: -1 implies no in-edges at
                    # some point; after inserts it may be stale-free only if
                    # the insert lottery never fired. Check the hard invariant:
                    if graph.in_degree(node) == 0:
                        continue
                    # a node that gained its first in-edge is re-pointed with
                    # probability 1/1 = 1 on that insert, so -1 here means the
                    # node had in-edges all along — that would be a bug.
                    had_first_insert = any(
                        u.kind == "insert" and u.target == node for u in stream
                    )
                    assert not had_first_insert or graph.in_degree(node) > 0
                else:
                    assert parent in graph.in_neighbors(node)

    def test_queries_work_after_updates(self, evolving_graph):
        graph = evolving_graph
        index = TSFIndex(graph, rg=30, rq=4, seed=7)
        stream = generate_update_stream(graph, 40, seed=8)
        for update in stream:
            apply_update(graph, update)
            index.apply_update(update)
        query = sample_query_nodes(graph, 1, seed=9)[0]
        result = index.single_source(query)
        assert result.score(query) == 1.0
        assert np.all(result.scores >= 0.0)

    def test_update_cheaper_than_rebuild(self, evolving_graph):
        """The paper's point about TSF being the only updatable index: one
        incremental update must touch far less than a full rebuild."""
        import time

        graph = evolving_graph
        index = TSFIndex(graph, rg=100, rq=4, seed=10)
        update_edge = None
        for s in range(graph.num_nodes):
            for t in graph.out_neighbors(s):
                update_edge = (s, t)
                break
            if update_edge:
                break
        from repro.graph import EdgeUpdate

        start = time.perf_counter()
        graph.remove_edge(*update_edge)
        index.apply_update(EdgeUpdate("delete", *update_edge))
        incremental = time.perf_counter() - start
        start = time.perf_counter()
        index.sync()
        rebuild = time.perf_counter() - start
        assert incremental < rebuild * 0.9


class TestWalkIndexUnderUpdates:
    def test_selective_invalidation_beats_full_rebuild(self, evolving_graph):
        graph = evolving_graph
        index = WalkIndex(graph, eps_a=0.15, delta=0.1, seed=11)
        queries = sample_query_nodes(graph, 5, seed=12)
        index.warm(queries)
        cached_before = index.num_cached
        stream = generate_update_stream(graph, 5, seed=13)
        for update in stream:
            apply_update(graph, update)
            index.apply_update(update)
        # some cache entries typically survive a short stream
        assert 0 <= index.num_cached <= cached_before
        # and correctness is preserved for a fresh query
        truth = compute_ground_truth(graph, c=0.6, iterations=40)
        q = queries[0]
        result = index.single_source(q)
        assert abs_error_max(result.scores, truth.single_source(q), q) <= 0.15
