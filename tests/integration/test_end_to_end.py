"""Cross-module integration tests: full query pipelines, method comparisons,
and the paper's qualitative claims in miniature."""

import numpy as np
import pytest

from repro import MonteCarlo, PowerMethod, ProbeSim, TSFIndex, TopSim
from repro.datasets import load_dataset
from repro.eval import (
    MethodSpec,
    abs_error_max,
    compute_ground_truth,
    format_table,
    run_single_source,
    run_topk,
    sample_query_nodes,
)


@pytest.fixture(scope="module")
def small_world():
    graph = load_dataset("as", scale="tiny")
    truth = compute_ground_truth(graph, c=0.6, iterations=40)
    queries = sample_query_nodes(graph, 5, seed=17)
    return graph, truth, queries


class TestFigure4Pipeline:
    def test_single_source_comparison_runs(self, small_world):
        graph, truth, queries = small_world
        methods = [
            MethodSpec("probesim", lambda: ProbeSim(graph, eps_a=0.1, delta=0.1, seed=1)),
            MethodSpec("topsim-sm", lambda: TopSim(graph, depth=3)),
            MethodSpec(
                "trun-topsim-sm",
                lambda: TopSim(graph, depth=3, variant="truncated",
                               degree_threshold=30, eta=0.001),
            ),
            MethodSpec(
                "prio-topsim-sm",
                lambda: TopSim(graph, depth=3, variant="prioritized", priority_width=30),
            ),
            MethodSpec("tsf", lambda: TSFIndex(graph, rg=60, rq=8, seed=2)),
        ]
        outcomes = run_single_source(methods, queries, truth)
        by_name = {o.method: o for o in outcomes}
        # ProbeSim honours its error budget
        assert by_name["probesim"].mean_abs_error <= 0.1
        # TSF (no guarantee, overestimates) is the least accurate method
        assert by_name["tsf"].mean_abs_error > by_name["probesim"].mean_abs_error
        # rendering works
        table = format_table([o.as_row() for o in outcomes], title="figure-4")
        assert "probesim" in table

    def test_heuristic_variants_cheaper_than_full(self, small_world):
        graph, truth, queries = small_world
        full = TopSim(graph, depth=3)
        prio = TopSim(graph, depth=3, variant="prioritized", priority_width=10)
        n_full = len(full.enumerate_prefixes(queries[0]))
        n_prio = len(prio.enumerate_prefixes(queries[0]))
        assert n_prio <= n_full


class TestFigure57Pipeline:
    def test_topk_quality_ordering(self, small_world):
        graph, truth, queries = small_world
        methods = [
            MethodSpec("probesim", lambda: ProbeSim(graph, eps_a=0.05, delta=0.05, seed=3)),
            MethodSpec("tsf", lambda: TSFIndex(graph, rg=40, rq=4, seed=4)),
        ]
        outcomes = run_topk(methods, queries, truth, k=10)
        by_name = {o.method: o for o in outcomes}
        assert by_name["probesim"].mean_precision >= by_name["tsf"].mean_precision
        assert by_name["probesim"].mean_ndcg >= 0.9


class TestMonteCarloCrossValidation:
    def test_probesim_and_mc_agree(self, small_world):
        """Two structurally different estimators agreeing within their summed
        error budgets is strong evidence both implement Eq. 3 correctly."""
        graph, truth, queries = small_world
        query = queries[0]
        probesim = ProbeSim(graph, eps_a=0.05, delta=0.05, seed=5).single_source(query)
        mc = MonteCarlo(graph, c=0.6, seed=6).single_source(query, num_walks=3000)
        diff = np.abs(probesim.scores - mc.scores)
        diff[query] = 0.0
        assert diff.max() < 0.08

    def test_all_methods_find_the_same_top1(self, small_world):
        """On a node with a clear-cut most-similar neighbour, every method
        should agree on top-1."""
        graph, truth, _ = small_world
        # pick the query with the largest gap between top-1 and top-2
        best_query, best_gap = None, -1.0
        for q in sample_query_nodes(graph, 20, seed=8):
            row = truth.single_source(q)
            top = np.sort(row[np.arange(len(row)) != q])[::-1]
            gap = top[0] - top[1]
            if gap > best_gap:
                best_query, best_gap = q, gap
        assert best_gap > 0.05, "stand-in graph should have a clear top-1 somewhere"
        expected = int(truth.topk_nodes(best_query, 1)[0])
        assert ProbeSim(graph, eps_a=0.05, delta=0.05, seed=9).topk(
            best_query, 1
        ).nodes[0] == expected
        assert TopSim(graph, depth=4).topk(best_query, 1).nodes[0] == expected
        assert PowerMethod(graph, c=0.6).single_source(best_query).topk(1).nodes[0] == expected


class TestScalabilityShape:
    def test_probesim_handles_graph_too_big_for_power_method(self):
        """Table 4's qualitative point: the exact method is out of reach
        where ProbeSim still answers (here: the dense-matrix cap stands in
        for the paper's 96GB memory limit)."""
        from repro.errors import ConfigurationError
        from repro.graph import DiGraph

        # over the dense-matrix safety cap (n^2 floats): PowerMethod refuses
        over_cap = DiGraph.from_edges([(0, 1), (1, 0)], num_nodes=25_000)
        with pytest.raises(ConfigurationError):
            PowerMethod(over_cap)
        # a 12k-node stand-in is routine for ProbeSim
        big = load_dataset("it-2004", scale="small")
        result = ProbeSim(big, eps_a=0.2, delta=0.1, seed=10, num_walks=200).single_source(17)
        assert result.score(17) == 1.0
