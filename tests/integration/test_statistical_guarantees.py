"""Statistical validation of the paper's theorems, measured over many seeds.

These tests treat the implementation as a black box and verify the claimed
*distributional* properties: unbiasedness (Lemma 1), the (eps_a, delta)
guarantee (Theorems 1-3), and the Monte Carlo convergence rate.
"""

import numpy as np
import pytest

from repro import ProbeSim
from repro.datasets import TOY_DECAY
from repro.eval.metrics import abs_error_max


class TestUnbiasedness:
    """Lemma 1: E[s~(u, v)] = s(u, v) for every strategy."""

    @pytest.mark.parametrize("strategy", ["basic", "batch", "randomized", "hybrid"])
    def test_mean_estimate_converges_to_truth(self, toy, toy_truth, strategy):
        query = 0
        truth = toy_truth.single_source(query)
        total = np.zeros(toy.num_nodes)
        runs = 40
        for seed in range(runs):
            engine = ProbeSim(
                toy, c=TOY_DECAY, eps_a=0.2, delta=0.2, strategy=strategy,
                seed=seed, num_walks=150, prune=False,
            )
            total += engine.single_source(query).scores
        mean = total / runs
        # 40 * 150 = 6000 effective walks: CLT band ~ 4 * sqrt(0.13/6000)
        for v in range(1, toy.num_nodes):
            assert mean[v] == pytest.approx(truth[v], abs=0.02), v

    def test_truncation_bias_is_one_sided(self, toy, toy_truth):
        """With aggressive truncation (and no compensation), estimates can
        only undershoot in expectation."""
        query = 0
        truth = toy_truth.single_source(query)
        total = np.zeros(toy.num_nodes)
        runs = 30
        for seed in range(runs):
            engine = ProbeSim(
                toy, c=TOY_DECAY, eps_a=0.2, delta=0.2, seed=seed,
                num_walks=150, max_walk_length=2, strategy="batch",
            )
            total += engine.single_source(query).scores
        mean = total / runs
        for v in range(1, toy.num_nodes):
            assert mean[v] <= truth[v] + 0.015, v


class TestGuaranteeRate:
    """Theorem 1: Pr[all errors <= eps_a] >= 1 - delta, measured."""

    def test_failure_rate_below_delta(self, toy, toy_truth):
        eps_a, delta = 0.1, 0.2
        query = 0
        truth = toy_truth.single_source(query)
        failures = 0
        runs = 60
        for seed in range(runs):
            engine = ProbeSim(
                toy, c=TOY_DECAY, eps_a=eps_a, delta=delta, seed=seed
            )
            err = abs_error_max(engine.single_source(query).scores, truth, query)
            failures += err > eps_a
        # the Chernoff budget is loose, so the observed failure rate should
        # be far below delta — and certainly not above it.
        assert failures / runs <= delta

    def test_tight_budget_rarely_fails_at_half_eps(self, tiny_wiki, tiny_wiki_truth):
        """Looser sanity check on a real-ish graph: most runs land well
        inside the budget."""
        eps_a = 0.1
        query = 10
        truth = tiny_wiki_truth.single_source(query)
        within_half = 0
        runs = 10
        for seed in range(runs):
            engine = ProbeSim(tiny_wiki, eps_a=eps_a, delta=0.1, seed=seed)
            err = abs_error_max(engine.single_source(query).scores, truth, query)
            within_half += err <= eps_a / 2
        assert within_half >= 8


class TestEngineGuaranteeRegression:
    """Seeded regression: the Chernoff-derived walk budget keeps the
    empirical max error within eps_a at the configured delta — on the loop
    engine, the batched trie-sharing engine, *and* the native kernel
    engine (whose counter RNG draws an entirely different walk set, so it
    needs its own statistical verification).  Seeds are fixed, so any
    future change to walk sampling, trie sharing or pruning that breaks
    the (eps_a, delta) guarantee fails this test deterministically."""

    EPS_A = 0.1
    DELTA = 0.2
    SEEDS = range(30)

    @pytest.mark.parametrize("engine", ["loop", "batched", "native"])
    def test_chernoff_budget_holds_on_toy(self, toy, toy_truth, engine):
        query = 0
        truth = toy_truth.single_source(query)
        failures = 0
        for seed in self.SEEDS:
            probe = ProbeSim(
                toy, c=TOY_DECAY, eps_a=self.EPS_A, delta=self.DELTA,
                strategy="batch", engine=engine, seed=seed,
            )
            err = abs_error_max(probe.single_source(query).scores, truth, query)
            failures += err > self.EPS_A
        assert failures / len(self.SEEDS) <= self.DELTA

    def test_engines_share_one_walk_budget(self, toy):
        """Both engines size the batch from the same Theorem 1 bound —
        batching changes execution, never the statistical contract."""
        loop = ProbeSim(toy, c=TOY_DECAY, eps_a=self.EPS_A, delta=self.DELTA,
                        strategy="batch", engine="loop", seed=0)
        batched = ProbeSim(toy, c=TOY_DECAY, eps_a=self.EPS_A, delta=self.DELTA,
                           strategy="batch", engine="batched", seed=0)
        assert (
            loop.single_source(0).num_walks == batched.single_source(0).num_walks
        )

    @pytest.mark.parametrize("engine", ["loop", "batched", "native"])
    def test_batched_queries_keep_the_guarantee(self, toy, toy_truth, engine):
        """single_source_many answers carry the same per-query guarantee."""
        queries = [0, 2, 5]
        probe = ProbeSim(
            toy, c=TOY_DECAY, eps_a=self.EPS_A, delta=0.05,
            strategy="batch", engine=engine, seed=1234,
        )
        for result in probe.single_source_many(queries):
            truth = toy_truth.single_source(result.query)
            assert abs_error_max(result.scores, truth, result.query) <= self.EPS_A


class TestConvergenceRate:
    def test_error_shrinks_with_walk_count(self, toy, toy_truth):
        """Monte Carlo scaling: quadrupling walks should roughly halve the
        average error (1/sqrt(n_r))."""
        query = 0
        truth = toy_truth.single_source(query)

        def mean_error(num_walks: int) -> float:
            errors = []
            for seed in range(12):
                engine = ProbeSim(
                    toy, c=TOY_DECAY, eps_a=0.2, delta=0.2, seed=seed,
                    num_walks=num_walks, strategy="batch",
                )
                errors.append(
                    abs_error_max(engine.single_source(query).scores, truth, query)
                )
            return float(np.mean(errors))

        err_small = mean_error(100)
        err_large = mean_error(1600)  # 16x walks -> ~4x smaller error
        assert err_large < err_small / 2.0

    def test_walk_count_scales_inverse_square(self, toy):
        from repro.core.config import ProbeSimConfig

        loose = ProbeSimConfig(eps_a=0.2, c=0.6).walk_count(1000)
        tight = ProbeSimConfig(eps_a=0.1, c=0.6).walk_count(1000)
        # halving eps quadruples the walk count (same delta, same n)
        assert tight == pytest.approx(4 * loose, rel=0.01)
