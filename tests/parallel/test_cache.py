"""ResultCache: LRU behaviour, epoch invalidation, counters."""

import pytest

from repro.parallel.cache import ResultCache


class TestLookup:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("m", 1, 0) is None
        cache.put("m", 1, 0, "answer")
        assert cache.get("m", 1, 0) == "answer"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_keys_do_not_collide_across_methods(self):
        cache = ResultCache(4)
        cache.put("a", 1, 0, "from-a")
        assert cache.get("b", 1, 0) is None

    def test_epoch_bump_is_a_miss(self):
        cache = ResultCache(4)
        cache.put("m", 1, 0, "stale")
        assert cache.get("m", 1, 1) is None


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = ResultCache(2)
        cache.put("m", 1, 0, "one")
        cache.put("m", 2, 0, "two")
        cache.get("m", 1, 0)  # touch 1: now 2 is LRU
        cache.put("m", 3, 0, "three")
        assert cache.get("m", 2, 0) is None
        assert cache.get("m", 1, 0) == "one"
        assert cache.get("m", 3, 0) == "three"
        assert cache.stats.evictions == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        assert not cache.enabled
        cache.put("m", 1, 0, "never stored")
        assert cache.get("m", 1, 0) is None
        assert cache.stats.lookups == 0  # disabled caches do not count

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)


class TestInvalidation:
    def test_invalidate_older_purges_and_counts(self):
        cache = ResultCache(8)
        cache.put("m", 1, 0, "e0")
        cache.put("m", 2, 0, "e0")
        cache.put("m", 1, 1, "e1")
        assert cache.invalidate_older(1) == 2
        assert cache.stats.invalidations == 2
        assert len(cache) == 1
        assert cache.get("m", 1, 1) == "e1"

    def test_invalidate_older_is_idempotent(self):
        cache = ResultCache(8)
        cache.put("m", 1, 0, "e0")
        cache.invalidate_older(1)
        assert cache.invalidate_older(1) == 0

    def test_clear_keeps_counters(self):
        cache = ResultCache(8)
        cache.put("m", 1, 0, "x")
        cache.get("m", 1, 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestNeighborhoodInvalidation:
    """The delta-maintenance path: drop touched nodes, keep hot keys warm."""

    def test_only_touched_query_nodes_purged(self):
        cache = ResultCache(8)
        cache.put("m", 1, 0, "hot")
        cache.put("m", 2, 0, "touched")
        cache.put("m", 3, 0, "also hot")
        assert cache.invalidate_nodes({2}) == 1
        assert cache.get("m", 2, 0) is None
        assert cache.get("m", 1, 0) == "hot"  # warm across the update
        assert cache.get("m", 3, 0) == "also hot"
        assert cache.stats.invalidations == 1

    def test_purges_across_epochs_and_methods(self):
        cache = ResultCache(8)
        cache.put("a", 5, 0, "old epoch")
        cache.put("a", 5, 1, "new epoch")
        cache.put("b", 5, 1, "other method")
        assert cache.invalidate_nodes([5]) == 3

    def test_empty_or_untouched_set_is_a_no_op(self):
        cache = ResultCache(8)
        cache.put("m", 1, 0, "x")
        assert cache.invalidate_nodes(set()) == 0
        assert cache.invalidate_nodes({99}) == 0
        assert cache.stats.invalidations == 0


class TestStats:
    def test_as_dict_shape(self):
        cache = ResultCache(2)
        cache.get("m", 1, 0)
        payload = cache.stats.as_dict()
        assert set(payload) == {
            "hits", "misses", "evictions", "invalidations", "hit_rate"
        }

    def test_hit_rate_zero_when_unused(self):
        assert ResultCache(2).stats.hit_rate == 0.0

    def test_snapshot_is_locked_and_complete(self):
        """Reports embed snapshot(): one locked read of every counter plus
        the live size — the shape workload reports depend on."""
        cache = ResultCache(2)
        cache.put("m", 1, 0, "x")
        cache.get("m", 1, 0)
        cache.get("m", 2, 0)
        snap = cache.snapshot()
        assert snap == {
            "hits": 1, "misses": 1, "evictions": 0, "invalidations": 0,
            "hit_rate": 0.5, "size": 1,
        }

    def test_snapshot_consistent_under_concurrent_lookups(self):
        """Hammer the cache from worker threads while snapshotting: every
        snapshot must satisfy the counter invariants (no torn reads)."""
        import threading

        cache = ResultCache(64)
        stop = threading.Event()

        def churn():
            node = 0
            while not stop.is_set():
                cache.put("m", node % 64, 0, node)
                cache.get("m", (node * 7) % 128, 0)
                node += 1

        workers = [threading.Thread(target=churn) for _ in range(4)]
        for worker in workers:
            worker.start()
        try:
            for _ in range(200):
                snap = cache.snapshot()
                lookups = snap["hits"] + snap["misses"]
                if lookups:
                    assert snap["hit_rate"] == snap["hits"] / lookups
                else:
                    assert snap["hit_rate"] == 0.0
        finally:
            stop.set()
            for worker in workers:
                worker.join()
