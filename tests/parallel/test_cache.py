"""ResultCache: LRU behaviour, epoch invalidation, counters."""

import pytest

from repro.parallel.cache import ResultCache


class TestLookup:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("m", 1, 0) is None
        cache.put("m", 1, 0, "answer")
        assert cache.get("m", 1, 0) == "answer"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_keys_do_not_collide_across_methods(self):
        cache = ResultCache(4)
        cache.put("a", 1, 0, "from-a")
        assert cache.get("b", 1, 0) is None

    def test_epoch_bump_is_a_miss(self):
        cache = ResultCache(4)
        cache.put("m", 1, 0, "stale")
        assert cache.get("m", 1, 1) is None


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = ResultCache(2)
        cache.put("m", 1, 0, "one")
        cache.put("m", 2, 0, "two")
        cache.get("m", 1, 0)  # touch 1: now 2 is LRU
        cache.put("m", 3, 0, "three")
        assert cache.get("m", 2, 0) is None
        assert cache.get("m", 1, 0) == "one"
        assert cache.get("m", 3, 0) == "three"
        assert cache.stats.evictions == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        assert not cache.enabled
        cache.put("m", 1, 0, "never stored")
        assert cache.get("m", 1, 0) is None
        assert cache.stats.lookups == 0  # disabled caches do not count

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)


class TestInvalidation:
    def test_invalidate_older_purges_and_counts(self):
        cache = ResultCache(8)
        cache.put("m", 1, 0, "e0")
        cache.put("m", 2, 0, "e0")
        cache.put("m", 1, 1, "e1")
        assert cache.invalidate_older(1) == 2
        assert cache.stats.invalidations == 2
        assert len(cache) == 1
        assert cache.get("m", 1, 1) == "e1"

    def test_invalidate_older_is_idempotent(self):
        cache = ResultCache(8)
        cache.put("m", 1, 0, "e0")
        cache.invalidate_older(1)
        assert cache.invalidate_older(1) == 0

    def test_clear_keeps_counters(self):
        cache = ResultCache(8)
        cache.put("m", 1, 0, "x")
        cache.get("m", 1, 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestStats:
    def test_as_dict_shape(self):
        cache = ResultCache(2)
        cache.get("m", 1, 0)
        payload = cache.stats.as_dict()
        assert set(payload) == {
            "hits", "misses", "evictions", "invalidations", "hit_rate"
        }

    def test_hit_rate_zero_when_unused(self):
        assert ResultCache(2).stats.hit_rate == 0.0
