"""Partitioning: determinism, balance, the incident-edge subgraph rule."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.parallel.partition import (
    PARTITION_STRATEGIES,
    Partition,
    degree_partition,
    hash_partition,
    make_partition,
    shard_subgraph,
)


class TestPartitionContainer:
    def test_owner_array_is_validated_and_frozen(self):
        part = Partition(np.array([0, 1, 0]), num_shards=2, strategy="hash")
        assert part.num_nodes == 3
        assert part.counts() == [2, 1]
        with pytest.raises(ValueError):
            part.owner[0] = 1  # read-only

    def test_out_of_range_owner_rejected(self):
        with pytest.raises(ConfigurationError, match=r"\[0, 2\)"):
            Partition(np.array([0, 2]), num_shards=2, strategy="hash")

    def test_owner_of_checks_range(self):
        part = Partition(np.array([1, 0]), num_shards=2, strategy="hash")
        assert part.owner_of(0) == 1
        with pytest.raises(GraphError, match="out of range"):
            part.owner_of(2)

    def test_shard_nodes_ascending_and_complete(self):
        part = hash_partition(50, 3)
        seen = np.concatenate([part.shard_nodes(s) for s in range(3)])
        assert sorted(seen.tolist()) == list(range(50))
        for s in range(3):
            nodes = part.shard_nodes(s)
            assert (np.diff(nodes) > 0).all() if nodes.size > 1 else True

    def test_shard_nodes_rejects_bad_shard(self):
        part = hash_partition(10, 2)
        with pytest.raises(ConfigurationError, match="out of range"):
            part.shard_nodes(2)


class TestHashPartition:
    def test_deterministic_across_calls(self):
        a = hash_partition(500, 4)
        b = hash_partition(500, 4)
        np.testing.assert_array_equal(a.owner, b.owner)

    def test_known_values_pinned(self):
        """SplitMix64 is a published constant mix — pin a few outputs so a
        silent change to the partitioner (which would re-home every node)
        cannot slip through."""
        owner = hash_partition(8, 4).owner
        assert owner.tolist() == [3, 1, 2, 1, 2, 2, 0, 3]

    def test_roughly_balanced(self):
        counts = hash_partition(10_000, 8).counts()
        assert min(counts) > 0.8 * (10_000 / 8)
        assert max(counts) < 1.2 * (10_000 / 8)

    def test_empty_graph_and_bad_args(self):
        assert hash_partition(0, 3).counts() == [0, 0, 0]
        with pytest.raises(GraphError, match="non-negative"):
            hash_partition(-1, 2)
        with pytest.raises(ConfigurationError):
            hash_partition(5, 0)


class TestDegreePartition:
    def test_deterministic(self, tiny_wiki):
        a = degree_partition(tiny_wiki, 4)
        b = degree_partition(tiny_wiki, 4)
        np.testing.assert_array_equal(a.owner, b.owner)

    def test_balances_degree_mass(self, tiny_wiki):
        part = degree_partition(tiny_wiki, 4)
        csr = CSRGraph.from_digraph(tiny_wiki)
        degrees = csr.in_degrees + csr.out_degrees
        loads = [
            int(degrees[part.shard_nodes(s)].sum()) for s in range(4)
        ]
        # greedy heaviest-first keeps shard degree mass within one hub
        assert max(loads) - min(loads) <= int(degrees.max())

    def test_accepts_csr_input(self, tiny_wiki_csr):
        part = degree_partition(tiny_wiki_csr, 3)
        assert part.num_nodes == tiny_wiki_csr.num_nodes
        assert part.strategy == "degree"

    def test_spreads_isolated_nodes(self):
        graph = DiGraph(6)  # all nodes degree 0
        counts = degree_partition(graph, 3).counts()
        assert counts == [2, 2, 2]


class TestMakePartition:
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_strategies_resolve(self, tiny_wiki, strategy):
        part = make_partition(tiny_wiki, 2, strategy)
        assert part.strategy == strategy
        assert part.num_nodes == tiny_wiki.num_nodes

    def test_unknown_strategy_rejected(self, tiny_wiki):
        with pytest.raises(ConfigurationError, match="strategy"):
            make_partition(tiny_wiki, 2, "random")


class TestShardSubgraph:
    def test_incident_edge_rule(self, diamond):
        part = Partition(np.array([0, 0, 1, 1]), 2, "hash")
        sub0 = shard_subgraph(diamond, part, 0)
        sub1 = shard_subgraph(diamond, part, 1)
        # shard 0 owns {0, 1}: every diamond edge touches one of them
        # except none — all do; shard 1 owns {2, 3}
        assert set(sub0.edges()) == {(1, 0), (2, 0), (0, 1), (3, 1)}
        assert set(sub1.edges()) == {(2, 0), (3, 1), (3, 2)}
        # node-id space is global in both shards
        assert sub0.num_nodes == sub1.num_nodes == diamond.num_nodes

    def test_union_covers_every_edge(self, tiny_wiki):
        part = make_partition(tiny_wiki, 4, "hash")
        union = set()
        for shard in range(4):
            union |= set(shard_subgraph(tiny_wiki, part, shard).edges())
        assert union == set(tiny_wiki.edges())

    def test_single_shard_preserves_adjacency_order(self):
        # insertion order deliberately non-sorted: the subgraph must keep
        # it in *both* directions so CSR snapshots are byte-identical
        graph = DiGraph(5)
        for s, t in [(3, 1), (0, 1), (2, 1), (1, 4), (1, 0)]:
            graph.add_edge(s, t)
        part = hash_partition(5, 1)
        sub = shard_subgraph(graph, part, 0)
        assert sub.in_neighbors(1) == graph.in_neighbors(1) == [3, 0, 2]
        assert sub.out_neighbors(1) == graph.out_neighbors(1) == [4, 0]
        a, b = CSRGraph.from_digraph(graph), CSRGraph.from_digraph(sub)
        np.testing.assert_array_equal(a.in_indices, b.in_indices)
        np.testing.assert_array_equal(a.out_indices, b.out_indices)

    def test_multi_shard_keeps_relative_order(self):
        graph = DiGraph(4)
        for s, t in [(3, 0), (1, 0), (2, 0)]:
            graph.add_edge(s, t)
        part = Partition(np.array([0, 1, 0, 0]), 2, "hash")
        sub1 = shard_subgraph(graph, part, 1)  # owns only node 1
        assert sub1.in_neighbors(0) == [1]
        sub0 = shard_subgraph(graph, part, 0)
        # shard 0 keeps every edge (all incident to owned nodes), in order
        assert sub0.in_neighbors(0) == [3, 1, 2]

    def test_accepts_csr_input(self, tiny_wiki_csr):
        part = hash_partition(tiny_wiki_csr.num_nodes, 2)
        sub = shard_subgraph(tiny_wiki_csr, part, 0)
        assert isinstance(sub, DiGraph)
        assert sub.num_nodes == tiny_wiki_csr.num_nodes

    def test_validates_shard_and_node_count(self, tiny_wiki):
        part = make_partition(tiny_wiki, 2, "hash")
        with pytest.raises(ConfigurationError, match="out of range"):
            shard_subgraph(tiny_wiki, part, 2)
        with pytest.raises(GraphError, match="nodes"):
            shard_subgraph(DiGraph(3), part, 0)


class TestEdgeSubgraph:
    def test_keep_everything_is_a_faithful_copy(self, tiny_wiki):
        clone = tiny_wiki.edge_subgraph(lambda s, t: True)
        assert clone == tiny_wiki
        assert list(clone.edges()) == list(tiny_wiki.edges())
        first = next(iter(clone.edges()))
        clone.remove_edge(*first)
        assert clone != tiny_wiki  # adjacency was copied, not shared

    def test_keep_nothing_empties_edges_only(self, tiny_wiki):
        clone = tiny_wiki.edge_subgraph(lambda s, t: False)
        assert clone.num_nodes == tiny_wiki.num_nodes
        assert clone.num_edges == 0

    def test_filtered_graph_supports_updates(self, diamond):
        clone = diamond.edge_subgraph(lambda s, t: s != 3)
        assert set(clone.edges()) == {(1, 0), (2, 0), (0, 1)}
        clone.add_edge(3, 2)  # membership sets were rebuilt correctly
        assert clone.has_edge(3, 2)
        with pytest.raises(Exception):
            clone.add_edge(1, 0)  # still a duplicate
