"""ParallelSimRankService: determinism, caching, crash recovery, hygiene.

The load-bearing contract: for fixed seeds the process-parallel service is
*bit-identical* to its sequential executor (same partition/replay/rebuild
schedule in one process) — and, for one worker on a static graph, to the
plain :class:`~repro.api.service.SimRankService`.  Everything else
(caching, crashes, epochs) must preserve that contract.
"""

import numpy as np
import pytest

from repro.api.service import SimRankService
from repro.errors import ConfigurationError, QueryError
from repro.parallel.pool import ParallelSimRankService

from test_shm import segment_names

METHOD = "probesim-batched"
CONFIG = {METHOD: {"eps_a": 0.3, "num_walks": 40, "seed": 11}}
QUERIES = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]


def make_service(graph, executor, workers=3, **kwargs):
    return ParallelSimRankService(
        graph.copy(), methods=(METHOD,), configs=CONFIG,
        workers=workers, executor=executor, **kwargs,
    )


def collect(service, with_updates=False):
    """A deterministic call sequence; returns every score vector in order."""
    out = [r.scores.copy() for r in service.single_source_many(QUERIES)]
    out.append(service.single_source(7).scores.copy())
    if with_updates:
        service.apply_edges(added=[(0, 9)], removed=[])
        out.extend(
            r.scores.copy() for r in service.single_source_many(QUERIES[:5])
        )
    out.append(service.topk(2, 5).scores.copy())
    return out


class TestBitIdentical:
    def test_process_matches_sequential_executor(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as parallel, \
                make_service(tiny_wiki, "sequential") as sequential:
            for got, want in zip(collect(parallel), collect(sequential)):
                np.testing.assert_array_equal(got, want)

    def test_process_matches_sequential_across_updates(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as parallel, \
                make_service(tiny_wiki, "sequential") as sequential:
            for got, want in zip(
                collect(parallel, with_updates=True),
                collect(sequential, with_updates=True),
            ):
                np.testing.assert_array_equal(got, want)

    def test_one_worker_matches_plain_sequential_service(self, tiny_wiki):
        """On a static graph, one process replica consumes exactly the RNG
        stream the plain in-process service would."""
        plain = SimRankService(tiny_wiki.copy(), methods=(METHOD,), configs=CONFIG)
        with make_service(tiny_wiki, "process", workers=1) as parallel:
            for got, want in zip(
                parallel.single_source_many(QUERIES),
                plain.single_source_many(QUERIES),
            ):
                np.testing.assert_array_equal(got.scores, want.scores)

    def test_runs_are_reproducible(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as first:
            a = collect(first, with_updates=True)
        with make_service(tiny_wiki, "process") as second:
            b = collect(second, with_updates=True)
        for got, want in zip(a, b):
            np.testing.assert_array_equal(got, want)

    def test_topk_many_matches_sequential(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as parallel, \
                make_service(tiny_wiki, "sequential") as sequential:
            for got, want in zip(
                parallel.topk_many(QUERIES[:4], k=5),
                sequential.topk_many(QUERIES[:4], k=5),
            ):
                np.testing.assert_array_equal(got.nodes, want.nodes)
                np.testing.assert_array_equal(got.scores, want.scores)


class TestCache:
    def test_hot_hits_skip_workers(self, tiny_wiki):
        with make_service(tiny_wiki, "process", cache_size=64) as service:
            first = service.single_source(3)
            again = service.single_source(3)
            assert again is first  # served straight from the cache
            assert service.cache.stats.hits == 1
            assert service.cache.stats.misses == 1

    def test_batch_duplicates_hit_across_batches(self, tiny_wiki):
        with make_service(tiny_wiki, "process", cache_size=64) as service:
            service.single_source_many(QUERIES)
            service.single_source_many(QUERIES)
            distinct = len(set(QUERIES))
            assert service.cache.stats.misses == distinct
            assert service.cache.stats.hits == distinct

    def test_sync_epoch_bump_invalidates(self, tiny_wiki):
        with make_service(tiny_wiki, "process", cache_size=64) as service:
            before = service.single_source(3)
            assert service.epoch == 0
            service.apply_edges(added=[(0, 9)])
            assert service.epoch == 1
            assert service.cache.stats.invalidations == 1
            after = service.single_source(3)
            assert after is not before  # recomputed against the new graph
            assert service.cache.stats.hits == 0

    def test_cache_does_not_change_determinism(self, tiny_wiki):
        with make_service(tiny_wiki, "process", cache_size=64) as cached, \
                make_service(tiny_wiki, "sequential", cache_size=64) as oracle:
            for got, want in zip(
                collect(cached, with_updates=True),
                collect(oracle, with_updates=True),
            ):
                np.testing.assert_array_equal(got, want)

    def test_cache_disabled_by_default(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as service:
            service.single_source(3)
            service.single_source(3)
            assert not service.cache.enabled
            assert service.cache.stats.lookups == 0


class TestCrashRecovery:
    def kill_one_worker(self, service):
        service._workers[1].process.kill()
        service._workers[1].process.join(timeout=10)

    def test_crash_mid_service_preserves_results(self, tiny_wiki):
        with make_service(tiny_wiki, "sequential") as oracle:
            want = collect(oracle)
        with make_service(tiny_wiki, "process") as service:
            got = [r.scores.copy() for r in service.single_source_many(QUERIES)]
            self.kill_one_worker(service)
            got.append(service.single_source(7).scores.copy())
            got.append(service.topk(2, 5).scores.copy())
            assert service.stats.worker_restarts == 1
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)

    def test_crash_replays_epoch_history(self, tiny_wiki):
        """The revived worker must fast-forward its RNG past everything it
        served this epoch, or later answers drift."""
        with make_service(tiny_wiki, "sequential") as oracle:
            oracle.single_source_many(QUERIES)
            want = [r.scores.copy() for r in oracle.single_source_many(QUERIES[:6])]
        with make_service(tiny_wiki, "process") as service:
            service.single_source_many(QUERIES)  # builds per-worker history
            self.kill_one_worker(service)
            got = [r.scores.copy() for r in service.single_source_many(QUERIES[:6])]
            assert service.stats.worker_restarts == 1
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)

    def test_crash_during_sync_is_healed(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as service:
            service.single_source_many(QUERIES)
            self.kill_one_worker(service)
            service.apply_edges(added=[(0, 9)])  # sync barrier heals the pool
            assert service.single_source(3).score(3) == 1.0
            assert service.stats.worker_restarts == 1


class TestLifecycleHygiene:
    def base_names(self):
        return segment_names("psim-")

    def test_close_unlinks_shared_memory(self, tiny_wiki):
        before = self.base_names()
        service = make_service(tiny_wiki, "process")
        assert len(self.base_names()) > len(before)
        service.close()
        assert self.base_names() == before

    def test_constructor_failure_unlinks(self, tiny_wiki):
        before = self.base_names()
        with pytest.raises(ConfigurationError):
            ParallelSimRankService(
                tiny_wiki.copy(), methods=(METHOD,),
                configs={METHOD: {"no_such_knob": 1}}, workers=2,
            )
        assert self.base_names() == before

    def test_exception_inside_with_block_unlinks(self, tiny_wiki):
        before = self.base_names()
        with pytest.raises(RuntimeError):
            with make_service(tiny_wiki, "process"):
                raise RuntimeError("simulated serving failure")
        assert self.base_names() == before

    def test_close_is_idempotent(self, tiny_wiki):
        service = make_service(tiny_wiki, "process")
        service.close()
        service.close()

    def test_estimator_error_does_not_kill_worker(self, tiny_wiki):
        """Worker-side exceptions surface as errors, not crashes."""
        with make_service(tiny_wiki, "process") as service:
            with pytest.raises(QueryError):
                service.single_source(10_000)
            assert service.single_source(3).score(3) == 1.0
            assert service.stats.worker_restarts == 0


class TestValidation:
    def test_rejects_non_parallel_safe_methods(self, tiny_wiki):
        with pytest.raises(ConfigurationError, match="parallel_safe"):
            ParallelSimRankService(tiny_wiki.copy(), methods=("sling",), workers=1)

    def test_allow_unsafe_overrides(self, toy):
        with ParallelSimRankService(
            toy.copy(), methods=("power",), workers=1,
            executor="sequential", allow_unsafe=True,
        ) as service:
            assert service.single_source(0).score(0) == 1.0

    def test_unknown_executor(self, tiny_wiki):
        with pytest.raises(ConfigurationError):
            make_service(tiny_wiki, "coroutine")

    def test_unknown_default_method(self, tiny_wiki):
        with pytest.raises(ConfigurationError):
            ParallelSimRankService(
                tiny_wiki.copy(), methods=(METHOD,), configs=CONFIG,
                default_method="tsf", workers=1, executor="sequential",
            )

    def test_frozen_graph_rejects_updates(self, tiny_wiki_csr):
        with ParallelSimRankService(
            tiny_wiki_csr, methods=(METHOD,), configs=CONFIG,
            workers=1, executor="sequential",
        ) as service:
            with pytest.raises(ConfigurationError):
                service.apply_edges(added=[(0, 9)])

    def test_bad_query_ids(self, tiny_wiki):
        with make_service(tiny_wiki, "sequential", workers=1) as service:
            with pytest.raises(QueryError):
                service.single_source("zero")
            with pytest.raises(QueryError):
                service.single_source(-1)
            with pytest.raises(QueryError):
                service.topk(0, k=0)

    def test_capabilities_come_from_registry(self, tiny_wiki):
        with make_service(tiny_wiki, "sequential", workers=1) as service:
            caps = service.capabilities()
            assert caps.parallel_safe
            assert caps.method == METHOD


class TestPipeDiscipline:
    def test_worker_error_drains_inflight_replies(self, tiny_wiki):
        """A worker-side error in one share must not leave another worker's
        reply buffered in its pipe — later calls would silently read stale
        results (off-by-one forever)."""
        with make_service(tiny_wiki, "process", workers=2) as service, \
                make_service(tiny_wiki, "sequential", workers=2) as oracle:
            for target in (service, oracle):
                bad = {
                    0: ("query", ("no-such-mount", "single_source", None, [(0, 3)])),
                    1: ("query", (METHOD, "single_source", None, [(1, 4)])),
                }
                with pytest.raises(QueryError, match="no-such-mount"):
                    target._rpc_all(bad)
            # both executors consumed identical streams through the failure;
            # the pipes must still be in lock-step afterwards
            for got, want in zip(
                service.single_source_many(QUERIES),
                oracle.single_source_many(QUERIES),
            ):
                np.testing.assert_array_equal(got.scores, want.scores)
            assert service.stats.worker_restarts == 0


class TestHistoryRollover:
    def test_histories_stay_bounded(self, tiny_wiki):
        with make_service(tiny_wiki, "process", history_limit=6) as service:
            for _ in range(5):
                service.single_source_many(QUERIES)
            assert max(len(h) for h in service._histories) < 6 + len(QUERIES)

    def test_rollover_preserves_determinism(self, tiny_wiki):
        """The rollover trigger is a pure function of the call sequence, so
        process and sequential executors roll over at the same instants."""
        with make_service(tiny_wiki, "process", history_limit=4) as parallel, \
                make_service(tiny_wiki, "sequential", history_limit=4) as oracle:
            for _ in range(3):
                for got, want in zip(
                    parallel.single_source_many(QUERIES),
                    oracle.single_source_many(QUERIES),
                ):
                    np.testing.assert_array_equal(got.scores, want.scores)

    def test_rollover_keeps_cache_entries(self, tiny_wiki):
        """Rollovers rebuild RNG streams, not the graph: cached answers for
        the current epoch stay valid (no spurious invalidation)."""
        with make_service(
            tiny_wiki, "process", history_limit=4, cache_size=64
        ) as service:
            service.single_source_many(QUERIES)  # > limit: triggers rollover
            service.single_source_many(QUERIES)
            assert service.cache.stats.hits > 0
            assert service.cache.stats.invalidations == 0

    def test_crash_after_rollover_recovers(self, tiny_wiki):
        with make_service(tiny_wiki, "sequential", history_limit=6) as oracle:
            oracle.single_source_many(QUERIES)
            want = [r.scores.copy() for r in oracle.single_source_many(QUERIES[:4])]
        with make_service(tiny_wiki, "process", history_limit=6) as service:
            service.single_source_many(QUERIES)
            service._workers[1].process.kill()
            service._workers[1].process.join(timeout=10)
            got = [r.scores.copy() for r in service.single_source_many(QUERIES[:4])]
            assert service.stats.worker_restarts == 1
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)
