"""ParallelSimRankService: determinism, caching, crash recovery, hygiene.

The load-bearing contract: for fixed seeds the process-parallel service is
*bit-identical* to its sequential executor (same partition/replay/rebuild
schedule in one process) — and, for one worker on a static graph, to the
plain :class:`~repro.api.service.SimRankService`.  Everything else
(caching, crashes, epochs) must preserve that contract.
"""

import numpy as np
import pytest

from repro.api.service import SimRankService
from repro.errors import ConfigurationError, QueryError
from repro.parallel.pool import ParallelSimRankService

from test_shm import segment_names

METHOD = "probesim-batched"
CONFIG = {METHOD: {"eps_a": 0.3, "num_walks": 40, "seed": 11}}
QUERIES = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]


def make_service(graph, executor, workers=3, **kwargs):
    return ParallelSimRankService(
        graph.copy(), methods=(METHOD,), configs=CONFIG,
        workers=workers, executor=executor, **kwargs,
    )


def collect(service, with_updates=False):
    """A deterministic call sequence; returns every score vector in order."""
    out = [r.scores.copy() for r in service.single_source_many(QUERIES)]
    out.append(service.single_source(7).scores.copy())
    if with_updates:
        service.apply_edges(added=[(0, 9)], removed=[])
        out.extend(
            r.scores.copy() for r in service.single_source_many(QUERIES[:5])
        )
    out.append(service.topk(2, 5).scores.copy())
    return out


class TestBitIdentical:
    def test_process_matches_sequential_executor(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as parallel, \
                make_service(tiny_wiki, "sequential") as sequential:
            for got, want in zip(collect(parallel), collect(sequential)):
                np.testing.assert_array_equal(got, want)

    def test_process_matches_sequential_across_updates(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as parallel, \
                make_service(tiny_wiki, "sequential") as sequential:
            for got, want in zip(
                collect(parallel, with_updates=True),
                collect(sequential, with_updates=True),
            ):
                np.testing.assert_array_equal(got, want)

    def test_one_worker_matches_plain_sequential_service(self, tiny_wiki):
        """On a static graph, one process replica consumes exactly the RNG
        stream the plain in-process service would."""
        plain = SimRankService(tiny_wiki.copy(), methods=(METHOD,), configs=CONFIG)
        with make_service(tiny_wiki, "process", workers=1) as parallel:
            for got, want in zip(
                parallel.single_source_many(QUERIES),
                plain.single_source_many(QUERIES),
            ):
                np.testing.assert_array_equal(got.scores, want.scores)

    def test_runs_are_reproducible(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as first:
            a = collect(first, with_updates=True)
        with make_service(tiny_wiki, "process") as second:
            b = collect(second, with_updates=True)
        for got, want in zip(a, b):
            np.testing.assert_array_equal(got, want)

    def test_topk_many_matches_sequential(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as parallel, \
                make_service(tiny_wiki, "sequential") as sequential:
            for got, want in zip(
                parallel.topk_many(QUERIES[:4], k=5),
                sequential.topk_many(QUERIES[:4], k=5),
            ):
                np.testing.assert_array_equal(got.nodes, want.nodes)
                np.testing.assert_array_equal(got.scores, want.scores)


class TestCache:
    def test_hot_hits_skip_workers(self, tiny_wiki):
        with make_service(tiny_wiki, "process", cache_size=64) as service:
            first = service.single_source(3)
            again = service.single_source(3)
            assert again is first  # served straight from the cache
            assert service.cache.stats.hits == 1
            assert service.cache.stats.misses == 1

    def test_batch_duplicates_hit_across_batches(self, tiny_wiki):
        with make_service(tiny_wiki, "process", cache_size=64) as service:
            service.single_source_many(QUERIES)
            service.single_source_many(QUERIES)
            distinct = len(set(QUERIES))
            assert service.cache.stats.misses == distinct
            assert service.cache.stats.hits == distinct

    def test_sync_epoch_bump_invalidates(self, tiny_wiki):
        with make_service(tiny_wiki, "process", cache_size=64) as service:
            before = service.single_source(3)
            assert service.epoch == 0
            service.apply_edges(added=[(0, 9)])
            assert service.epoch == 1
            assert service.cache.stats.invalidations == 1
            after = service.single_source(3)
            assert after is not before  # recomputed against the new graph
            assert service.cache.stats.hits == 0

    def test_cache_does_not_change_determinism(self, tiny_wiki):
        with make_service(tiny_wiki, "process", cache_size=64) as cached, \
                make_service(tiny_wiki, "sequential", cache_size=64) as oracle:
            for got, want in zip(
                collect(cached, with_updates=True),
                collect(oracle, with_updates=True),
            ):
                np.testing.assert_array_equal(got, want)

    def test_cache_disabled_by_default(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as service:
            service.single_source(3)
            service.single_source(3)
            assert not service.cache.enabled
            assert service.cache.stats.lookups == 0


class TestCrashRecovery:
    def kill_one_worker(self, service):
        service._workers[1].process.kill()
        service._workers[1].process.join(timeout=10)

    def test_crash_mid_service_preserves_results(self, tiny_wiki):
        with make_service(tiny_wiki, "sequential") as oracle:
            want = collect(oracle)
        with make_service(tiny_wiki, "process") as service:
            got = [r.scores.copy() for r in service.single_source_many(QUERIES)]
            self.kill_one_worker(service)
            got.append(service.single_source(7).scores.copy())
            got.append(service.topk(2, 5).scores.copy())
            assert service.stats.worker_restarts == 1
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)

    def test_crash_replays_epoch_history(self, tiny_wiki):
        """The revived worker must fast-forward its RNG past everything it
        served this epoch, or later answers drift."""
        with make_service(tiny_wiki, "sequential") as oracle:
            oracle.single_source_many(QUERIES)
            want = [r.scores.copy() for r in oracle.single_source_many(QUERIES[:6])]
        with make_service(tiny_wiki, "process") as service:
            service.single_source_many(QUERIES)  # builds per-worker history
            self.kill_one_worker(service)
            got = [r.scores.copy() for r in service.single_source_many(QUERIES[:6])]
            assert service.stats.worker_restarts == 1
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)

    def test_crash_during_sync_is_healed(self, tiny_wiki):
        with make_service(tiny_wiki, "process") as service:
            service.single_source_many(QUERIES)
            self.kill_one_worker(service)
            service.apply_edges(added=[(0, 9)])  # sync barrier heals the pool
            assert service.single_source(3).score(3) == 1.0
            assert service.stats.worker_restarts == 1


class TestLifecycleHygiene:
    def base_names(self):
        return segment_names("psim-")

    def test_close_unlinks_shared_memory(self, tiny_wiki):
        before = self.base_names()
        service = make_service(tiny_wiki, "process")
        assert len(self.base_names()) > len(before)
        service.close()
        assert self.base_names() == before

    def test_constructor_failure_unlinks(self, tiny_wiki):
        before = self.base_names()
        with pytest.raises(ConfigurationError):
            ParallelSimRankService(
                tiny_wiki.copy(), methods=(METHOD,),
                configs={METHOD: {"no_such_knob": 1}}, workers=2,
            )
        assert self.base_names() == before

    def test_exception_inside_with_block_unlinks(self, tiny_wiki):
        before = self.base_names()
        with pytest.raises(RuntimeError):
            with make_service(tiny_wiki, "process"):
                raise RuntimeError("simulated serving failure")
        assert self.base_names() == before

    def test_close_is_idempotent(self, tiny_wiki):
        service = make_service(tiny_wiki, "process")
        service.close()
        service.close()

    def test_estimator_error_does_not_kill_worker(self, tiny_wiki):
        """Worker-side exceptions surface as errors, not crashes."""
        with make_service(tiny_wiki, "process") as service:
            with pytest.raises(QueryError):
                service.single_source(10_000)
            assert service.single_source(3).score(3) == 1.0
            assert service.stats.worker_restarts == 0


class TestValidation:
    def test_rejects_non_parallel_safe_methods(self, tiny_wiki):
        with pytest.raises(ConfigurationError, match="parallel_safe"):
            ParallelSimRankService(tiny_wiki.copy(), methods=("sling",), workers=1)

    def test_allow_unsafe_overrides(self, toy):
        with ParallelSimRankService(
            toy.copy(), methods=("power",), workers=1,
            executor="sequential", allow_unsafe=True,
        ) as service:
            assert service.single_source(0).score(0) == 1.0

    def test_unknown_executor(self, tiny_wiki):
        with pytest.raises(ConfigurationError):
            make_service(tiny_wiki, "coroutine")

    def test_unknown_default_method(self, tiny_wiki):
        with pytest.raises(ConfigurationError):
            ParallelSimRankService(
                tiny_wiki.copy(), methods=(METHOD,), configs=CONFIG,
                default_method="tsf", workers=1, executor="sequential",
            )

    def test_frozen_graph_rejects_updates(self, tiny_wiki_csr):
        with ParallelSimRankService(
            tiny_wiki_csr, methods=(METHOD,), configs=CONFIG,
            workers=1, executor="sequential",
        ) as service:
            with pytest.raises(ConfigurationError):
                service.apply_edges(added=[(0, 9)])

    def test_bad_query_ids(self, tiny_wiki):
        with make_service(tiny_wiki, "sequential", workers=1) as service:
            with pytest.raises(QueryError):
                service.single_source("zero")
            with pytest.raises(QueryError):
                service.single_source(-1)
            with pytest.raises(QueryError):
                service.topk(0, k=0)

    def test_capabilities_come_from_registry(self, tiny_wiki):
        with make_service(tiny_wiki, "sequential", workers=1) as service:
            caps = service.capabilities()
            assert caps.parallel_safe
            assert caps.method == METHOD


class TestPipeDiscipline:
    def test_worker_error_drains_inflight_replies(self, tiny_wiki):
        """A worker-side error in one share must not leave another worker's
        reply buffered in its pipe — later calls would silently read stale
        results (off-by-one forever)."""
        with make_service(tiny_wiki, "process", workers=2) as service, \
                make_service(tiny_wiki, "sequential", workers=2) as oracle:
            for target in (service, oracle):
                bad = {
                    0: ("query", ("no-such-mount", "single_source", None, [(0, 3)])),
                    1: ("query", (METHOD, "single_source", None, [(1, 4)])),
                }
                with pytest.raises(QueryError, match="no-such-mount"):
                    target._rpc_all(bad)
            # both executors consumed identical streams through the failure;
            # the pipes must still be in lock-step afterwards
            for got, want in zip(
                service.single_source_many(QUERIES),
                oracle.single_source_many(QUERIES),
            ):
                np.testing.assert_array_equal(got.scores, want.scores)
            assert service.stats.worker_restarts == 0


INCREMENTAL = "tsf"
INCREMENTAL_CONFIG = {INCREMENTAL: {"rg": 12, "rq": 3, "depth": 5, "seed": 11}}


def make_incremental(graph, executor, workers=3, **kwargs):
    return ParallelSimRankService(
        graph.copy(), methods=(INCREMENTAL,), configs=INCREMENTAL_CONFIG,
        workers=workers, executor=executor, **kwargs,
    )


def collect_with_bursts(service):
    """Queries interleaved with two small update bursts, scores in order."""
    out = [r.scores.copy() for r in service.single_source_many(QUERIES)]
    service.apply_edges(added=[(0, 9), (5, 17)])
    out.extend(r.scores.copy() for r in service.single_source_many(QUERIES[:6]))
    service.apply_edges(removed=[(0, 9)])
    out.append(service.single_source(7).scores.copy())
    return out


class TestDeltaMaintenance:
    """The O(Δ) path: in-place absorption instead of epoch rebuilds."""

    def test_auto_resolves_by_capability(self, tiny_wiki):
        with make_incremental(tiny_wiki, "sequential") as incremental, \
                make_service(tiny_wiki, "sequential") as bulk:
            assert incremental.maintenance == "delta"
            assert bulk.maintenance == "rebuild"  # probesim is not incremental

    def test_explicit_delta_needs_incremental_methods(self, tiny_wiki):
        with pytest.raises(ConfigurationError, match="incremental_updates"):
            make_service(tiny_wiki, "sequential", maintenance="delta")

    def test_explicit_delta_needs_mutable_graph(self, tiny_wiki_csr):
        with pytest.raises(ConfigurationError, match="mutable"):
            ParallelSimRankService(
                tiny_wiki_csr, methods=(INCREMENTAL,),
                configs=INCREMENTAL_CONFIG, workers=1,
                executor="sequential", maintenance="delta",
            )

    def test_delta_sync_does_not_publish_an_epoch(self, tiny_wiki):
        with make_incremental(tiny_wiki, "process") as service:
            service.single_source(3)
            service.apply_edges(added=[(0, 9)])
            assert service.epoch == 0  # the graph generation stood still
            assert service.stats.delta_syncs == 1
            assert service.stats.delta_updates == 1
            assert service.stats.epochs == 0
            assert service.stats.syncs == 1
            assert service.single_source(3).score(3) == 1.0

    def test_process_matches_sequential_oracle_under_updates(self, tiny_wiki):
        with make_incremental(tiny_wiki, "process") as parallel, \
                make_incremental(tiny_wiki, "sequential") as oracle:
            for got, want in zip(
                collect_with_bursts(parallel), collect_with_bursts(oracle)
            ):
                np.testing.assert_array_equal(got, want)

    def test_delta_runs_are_reproducible(self, tiny_wiki):
        with make_incremental(tiny_wiki, "process") as first:
            a = collect_with_bursts(first)
        with make_incremental(tiny_wiki, "process") as second:
            b = collect_with_bursts(second)
        for got, want in zip(a, b):
            np.testing.assert_array_equal(got, want)

    def test_untouched_hot_keys_stay_warm(self, tiny_wiki):
        """Fine-grained invalidation: an update far from the hot query must
        not evict its cached answer (the rebuild path would flush it)."""
        with make_incremental(tiny_wiki, "process", cache_size=64) as service:
            hot = 3
            burst = [(150, 160)]  # far from node 3's 1-hop neighborhood
            assert hot not in {n for edge in burst for n in edge}
            first = service.single_source(hot)
            service.apply_edges(added=burst)
            again = service.single_source(hot)
            assert again is first  # still served from the cache
            assert service.cache.stats.hits == 1

    def test_touched_neighborhood_is_invalidated(self, tiny_wiki):
        with make_incremental(tiny_wiki, "process", cache_size=64) as service:
            first = service.single_source(3)
            service.apply_edges(added=[(3, 9)])  # 3 is an endpoint
            assert service.cache.stats.invalidations >= 1
            again = service.single_source(3)
            assert again is not first  # recomputed against the new graph

    def test_log_overflow_compacts_into_a_fresh_epoch(self, tiny_wiki):
        with make_incremental(
            tiny_wiki, "process", delta_log_capacity=3, cache_size=64
        ) as service:
            service.single_source(3)
            service.apply_edges(added=[(0, 9), (5, 17)])   # fits: delta
            assert service.epoch == 0
            service.apply_edges(added=[(1, 9), (2, 9)])    # overflows: compact
            assert service.epoch == 1
            assert service.stats.delta_syncs == 1
            assert service.stats.epochs == 1
            # compaction emptied the log, so small bursts go delta again
            service.apply_edges(removed=[(0, 9)])
            assert service.epoch == 1
            assert service.stats.delta_syncs == 2
            assert service.single_source(3).score(3) == 1.0

    def test_compaction_matches_sequential_oracle(self, tiny_wiki):
        def run(executor):
            with make_incremental(
                tiny_wiki, executor, delta_log_capacity=3
            ) as service:
                return collect_with_bursts(service)

        for got, want in zip(run("process"), run("sequential")):
            np.testing.assert_array_equal(got, want)

    def test_crash_mid_delta_replays_the_stream(self, tiny_wiki):
        """A worker killed after absorbing deltas must be revived by
        replaying build + queries + delta bursts in their original
        interleaving — its mirror and RNG then match the sequential
        oracle's exactly."""
        with make_incremental(tiny_wiki, "sequential") as oracle:
            oracle.single_source_many(QUERIES)
            oracle.apply_edges(added=[(0, 9), (5, 17)])
            oracle.single_source_many(QUERIES[:6])
            want = [r.scores.copy() for r in oracle.single_source_many(QUERIES)]
        with make_incremental(tiny_wiki, "process") as service:
            service.single_source_many(QUERIES)
            service.apply_edges(added=[(0, 9), (5, 17)])
            service.single_source_many(QUERIES[:6])
            service._workers[1].process.kill()
            service._workers[1].process.join(timeout=10)
            got = [r.scores.copy() for r in service.single_source_many(QUERIES)]
            assert service.stats.worker_restarts == 1
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)

    def test_failed_delta_burst_heals_by_compaction(self, tiny_wiki):
        """A replica raising mid-burst must not wedge the service: the
        burst is already in the log and some mirrors may have applied it,
        so sync falls back to one epoch rebuild (consistent state), then
        surfaces the error — and later small bursts go delta again."""
        from repro.api.estimator import Capabilities, SimRankEstimator
        from repro.api.registry import _REGISTRY, register
        from repro.core.results import SimRankResult

        class _FragileIncremental(SimRankEstimator):
            """Incremental replica that corrupts on one poisoned update."""

            def __init__(self, graph):
                self.graph = graph

            def single_source(self, query):
                return SimRankResult(
                    query=query, scores=np.zeros(self.graph.num_nodes),
                    num_walks=0, elapsed=0.0, method="fragile",
                )

            def sync(self):
                """Nothing to rebuild."""

            def capabilities(self):
                return Capabilities(
                    method="fragile", exact=False, index_based=True,
                    supports_dynamic=True, incremental_updates=True,
                    parallel_safe=True,
                )

            def apply_updates(self, updates):
                for update in updates:
                    if update.target == 150:
                        raise RuntimeError("replica corrupted")

        name = "fragile-incremental-test"
        register(name, lambda graph: _FragileIncremental(graph),
                 capabilities=_FragileIncremental(None).capabilities(),
                 replace=True)
        try:
            with ParallelSimRankService(
                tiny_wiki.copy(), methods=(name,), workers=2,
                executor="sequential", maintenance="delta",
            ) as service:
                service.apply_edges(added=[(0, 9)])  # healthy burst: delta
                assert service.stats.delta_syncs == 1
                assert service.epoch == 0
                with pytest.raises(QueryError, match="replica corrupted"):
                    service.apply_edges(added=[(0, 150)])  # poisoned burst
                # healed: the compaction published the mutated graph as a
                # fresh epoch, every replica was rebuilt, the log is empty
                assert service.epoch == 1
                assert service.stats.epochs == 1
                assert service.graph.has_edge(0, 150)
                assert service.single_source(3).query == 3  # still serving
                service.apply_edges(added=[(1, 9)])  # delta path works again
                assert service.stats.delta_syncs == 2
                assert service.epoch == 1
        finally:
            _REGISTRY.pop(name, None)

    def test_rejected_update_never_reaches_the_pending_burst(self, tiny_wiki):
        """A rejected mutation (duplicate insert) must leave no trace in
        the pending delta record: the next sync ships only the updates the
        graph actually took, instead of poisoning every worker mirror."""
        from repro.errors import DuplicateEdgeError

        existing = next(iter(tiny_wiki.edges()))
        with make_incremental(
            tiny_wiki, "sequential", auto_sync=False
        ) as service:
            service.apply_edges(added=[(0, 9)])  # valid, deferred
            with pytest.raises(DuplicateEdgeError):
                service.apply_edges(added=[existing])
            service.sync()  # ships exactly the one applied update
            assert service.stats.delta_syncs == 1
            assert service.stats.delta_updates == 1
            assert service.single_source(3).query == 3

    def test_mixed_batch_failure_syncs_applied_prefix_unmasked(self, tiny_wiki):
        """Under auto_sync a mid-batch rejection still flushes the applied
        prefix through the delta path, and the caller sees the original
        graph error — not a worker-side QueryError from a poisoned burst."""
        from repro.errors import DuplicateEdgeError

        existing = next(iter(tiny_wiki.edges()))
        with make_incremental(tiny_wiki, "sequential") as service:
            with pytest.raises(DuplicateEdgeError):
                service.apply_edges(added=[(0, 9), existing])
            assert service.stats.updates_applied == 1
            assert service.stats.delta_syncs == 1
            assert service.stats.delta_updates == 1
            assert service.graph.has_edge(0, 9)

    def test_failed_rebuild_retry_does_not_drop_the_burst(self, tiny_wiki):
        """If the rebuild/compaction attempt dies transiently, the pending
        record and the staleness flag must survive, so the retry actually
        delivers the mutations instead of shipping an empty delta and
        declaring the service clean."""
        with make_incremental(
            tiny_wiki, "sequential", auto_sync=False, delta_log_capacity=2
        ) as service:
            service.apply_edges(added=[(0, 9), (5, 17), (1, 9)])  # > capacity
            original = service._rebarrier

            def exploding_rebarrier(replay_deltas=False):
                raise RuntimeError("transient rebuild failure")

            service._rebarrier = exploding_rebarrier
            with pytest.raises(RuntimeError, match="transient"):
                service.sync()
            assert service._graph_stale
            assert len(service._pending_updates) == 3
            service._rebarrier = original
            service.sync()  # the retry performs the real rebuild
            assert not service._graph_stale
            assert service.stats.epochs == 1  # one *completed* rebuild
            # worker mirrors caught up with the coordinator graph
            mirror = service._workers[0].core.mirror
            assert mirror.num_edges == service.graph.num_edges
            assert mirror.has_edge(1, 9)

    def test_delta_heavy_epoch_does_not_thrash_rollover(self):
        """Regression: delta payloads re-shipped by a rollover land back in
        the fresh histories — if they counted toward the rollover trigger,
        an epoch with >= history_limit delta bursts would rebuild the pool
        on every subsequent query, forever.  Only queries count."""
        from repro.graph import DiGraph

        cycle = DiGraph.from_edges(
            [(i, (i + 1) % 12) for i in range(12)]
        )
        with ParallelSimRankService(
            cycle, methods=(INCREMENTAL,),
            configs={INCREMENTAL: {"rg": 6, "rq": 2, "depth": 3, "seed": 5}},
            workers=1, executor="sequential", maintenance="delta",
            history_limit=4,
        ) as service:
            rebarriers = 0
            original = service._rebarrier

            def spy(replay_deltas=False):
                nonlocal rebarriers
                rebarriers += 1
                original(replay_deltas)

            service._rebarrier = spy
            for i in range(6):  # 6 delta payloads > history_limit
                service.apply_edges(added=[(i, (i + 2) % 12)])
            assert service.stats.delta_syncs == 6
            for _ in range(9):
                service.single_source(0)
            # rollovers fire once per history_limit served queries (the
            # check precedes each query) — not once per query
            assert rebarriers == 2

    def test_rollover_replays_delta_stream(self, tiny_wiki):
        """The history-bounding rollover rebuilds replicas at the epoch
        base, so it must re-ship the epoch's deltas — and stay bit-exact
        against the sequential executor rolling over at the same instants."""
        def run(executor):
            with make_incremental(
                tiny_wiki, executor, history_limit=8
            ) as service:
                return collect_with_bursts(service)

        for got, want in zip(run("process"), run("sequential")):
            np.testing.assert_array_equal(got, want)


class TestHistoryRollover:
    def test_histories_stay_bounded(self, tiny_wiki):
        with make_service(tiny_wiki, "process", history_limit=6) as service:
            for _ in range(5):
                service.single_source_many(QUERIES)
            assert max(len(h) for h in service._histories) < 6 + len(QUERIES)

    def test_rollover_preserves_determinism(self, tiny_wiki):
        """The rollover trigger is a pure function of the call sequence, so
        process and sequential executors roll over at the same instants."""
        with make_service(tiny_wiki, "process", history_limit=4) as parallel, \
                make_service(tiny_wiki, "sequential", history_limit=4) as oracle:
            for _ in range(3):
                for got, want in zip(
                    parallel.single_source_many(QUERIES),
                    oracle.single_source_many(QUERIES),
                ):
                    np.testing.assert_array_equal(got.scores, want.scores)

    def test_rollover_keeps_cache_entries(self, tiny_wiki):
        """Rollovers rebuild RNG streams, not the graph: cached answers for
        the current epoch stay valid (no spurious invalidation)."""
        with make_service(
            tiny_wiki, "process", history_limit=4, cache_size=64
        ) as service:
            service.single_source_many(QUERIES)  # > limit: triggers rollover
            service.single_source_many(QUERIES)
            assert service.cache.stats.hits > 0
            assert service.cache.stats.invalidations == 0

    def test_crash_after_rollover_recovers(self, tiny_wiki):
        with make_service(tiny_wiki, "sequential", history_limit=6) as oracle:
            oracle.single_source_many(QUERIES)
            want = [r.scores.copy() for r in oracle.single_source_many(QUERIES[:4])]
        with make_service(tiny_wiki, "process", history_limit=6) as service:
            service.single_source_many(QUERIES)
            service._workers[1].process.kill()
            service._workers[1].process.join(timeout=10)
            got = [r.scores.copy() for r in service.single_source_many(QUERIES[:4])]
            assert service.stats.worker_restarts == 1
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)
