"""ShardedSimRankService: routing, bit-exactness oracles, shard boundaries.

The load-bearing contracts, mirroring ``test_pool.py`` one level up:

- for every shard count P, the process executor is bit-identical to the
  sequential oracle (same partition, same per-shard schedule);
- P=1 is bit-identical to the unsharded ``ParallelSimRankService`` — the
  anchor tying the shard layer to everything PRs 4–6 pinned;
- an update touches the caches and delta logs of its *owning* shards
  only: spanning updates invalidate both sides, everyone else stays warm.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, QueryError
from repro.graph.csr import CSRGraph
from repro.parallel.partition import Partition, make_partition
from repro.parallel.pool import ParallelSimRankService
from repro.parallel.sharded import ShardedSimRankService
from repro.workloads import generate_workload, run_workload

METHOD = "probesim-batched"
CONFIG = {METHOD: {"eps_a": 0.3, "num_walks": 40, "seed": 11}}
QUERIES = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]

INCREMENTAL = "tsf"
INCREMENTAL_CONFIG = {INCREMENTAL: {"rg": 12, "rq": 3, "depth": 5, "seed": 11}}


def make_sharded(graph, executor, shards, workers=2, **kwargs):
    return ShardedSimRankService(
        graph.copy(), methods=(METHOD,), configs=CONFIG,
        shards=shards, workers=workers, executor=executor, **kwargs,
    )


def collect(service, with_updates=False):
    """A deterministic call sequence; returns every score vector in order."""
    out = [r.scores.copy() for r in service.single_source_many(QUERIES)]
    out.append(service.single_source(7).scores.copy())
    if with_updates:
        service.apply_edges(added=[(0, 9)], removed=[])
        out.extend(
            r.scores.copy() for r in service.single_source_many(QUERIES[:5])
        )
    out.append(service.topk(2, 5).scores.copy())
    return out


class TestBitIdentical:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_process_matches_sequential_per_shard_count(
        self, tiny_wiki, shards
    ):
        with make_sharded(tiny_wiki, "process", shards, workers=1) as proc, \
                make_sharded(tiny_wiki, "sequential", shards, workers=1) as seq:
            for got, want in zip(
                collect(proc, with_updates=True),
                collect(seq, with_updates=True),
            ):
                np.testing.assert_array_equal(got, want)

    def test_one_shard_matches_unsharded_service(self, tiny_wiki):
        for executor in ("sequential", "process"):
            with ParallelSimRankService(
                tiny_wiki.copy(), methods=(METHOD,), configs=CONFIG,
                workers=2, executor=executor,
            ) as flat, make_sharded(tiny_wiki, executor, shards=1) as sharded:
                for got, want in zip(
                    collect(sharded, with_updates=True),
                    collect(flat, with_updates=True),
                ):
                    np.testing.assert_array_equal(got, want)

    def test_runs_are_reproducible(self, tiny_wiki):
        with make_sharded(tiny_wiki, "sequential", 3) as first:
            a = collect(first, with_updates=True)
        with make_sharded(tiny_wiki, "sequential", 3) as second:
            b = collect(second, with_updates=True)
        for got, want in zip(a, b):
            np.testing.assert_array_equal(got, want)

    def test_degree_partition_is_deterministic_too(self, tiny_wiki):
        with make_sharded(tiny_wiki, "sequential", 2, partition="degree") as a, \
                make_sharded(
                    tiny_wiki, "sequential", 2, partition="degree"
                ) as b:
            for got, want in zip(collect(a), collect(b)):
                np.testing.assert_array_equal(got, want)


class TestWorkloadDigests:
    """Driver digests over full traces — the acceptance-criteria oracle."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("read_fraction", [1.0, 0.5])
    def test_process_digest_matches_sequential(
        self, tiny_wiki, shards, read_fraction
    ):
        trace = generate_workload(
            tiny_wiki, num_ops=30, read_fraction=read_fraction,
            zipf_s=1.1, max_query_batch=6, seed=7,
        )
        digests = [
            run_workload(
                tiny_wiki, trace, [METHOD], configs=CONFIG, workers=1,
                executor=executor, shards=shards, cache_size=8,
            ).reports[0].digest
            for executor in ("sequential", "process")
        ]
        assert digests[0] == digests[1]

    def test_one_shard_digest_matches_unsharded(self, tiny_wiki):
        trace = generate_workload(
            tiny_wiki, num_ops=30, read_fraction=0.5, zipf_s=1.1,
            max_query_batch=6, seed=7,
        )
        sharded = run_workload(
            tiny_wiki, trace, [METHOD], configs=CONFIG, workers=2,
            executor="sequential", shards=1,
        ).reports[0]
        flat = run_workload(
            tiny_wiki, trace, [METHOD], configs=CONFIG, workers=2,
            executor="sequential",
        ).reports[0]
        assert sharded.digest == flat.digest

    def test_thread_executor_rejects_shards(self, tiny_wiki):
        trace = generate_workload(tiny_wiki, num_ops=10, seed=7)
        from repro.errors import EvaluationError
        with pytest.raises(EvaluationError, match="thread"):
            run_workload(
                tiny_wiki, trace, [METHOD], configs=CONFIG,
                executor="thread", shards=2,
            )


class TestShardBoundaries:
    def _two_shard_incremental(self, graph, **kwargs):
        return ShardedSimRankService(
            graph.copy(), methods=(INCREMENTAL,), configs=INCREMENTAL_CONFIG,
            shards=2, workers=1, executor="sequential", cache_size=16,
            **kwargs,
        )

    def test_spanning_update_invalidates_both_shard_caches(self, tiny_wiki):
        with self._two_shard_incremental(tiny_wiki) as service:
            owner = service.partition.owner
            source = int(np.flatnonzero(owner == 0)[0])
            target = next(
                int(node) for node in np.flatnonzero(owner == 1)
                if not service.graph.has_edge(source, int(node))
            )
            service.single_source(source)
            service.single_source(target)
            assert len(service.shard_services[0].cache) == 1
            assert len(service.shard_services[1].cache) == 1
            service.apply_edges(added=[(source, target)])
            for shard in (0, 1):
                snap = service.shard_services[shard].cache.snapshot()
                assert snap["invalidations"] >= 1, f"shard {shard} kept stale entries"

    def test_update_leaves_non_owning_shards_warm(self, tiny_wiki):
        with self._two_shard_incremental(tiny_wiki) as service:
            owner = service.partition.owner
            shard0 = np.flatnonzero(owner == 0)
            source, target = (
                int(shard0[0]),
                next(
                    int(n) for n in shard0[1:]
                    if not service.graph.has_edge(int(shard0[0]), int(n))
                ),
            )
            # warm a far-away shard-1 entry, then update entirely inside
            # shard 0: shard 1's cache must not turn over
            remote = int(np.flatnonzero(owner == 1)[-1])
            service.single_source(remote)
            service.apply_edges(added=[(source, target)])
            assert service.shard_services[1].cache.snapshot()["invalidations"] == 0
            before = service.shard_services[1].cache.snapshot()["hits"]
            service.single_source(remote)
            assert (
                service.shard_services[1].cache.snapshot()["hits"] == before + 1
            )

    def test_empty_shard_is_legal_and_unqueried(self, diamond):
        owner = np.zeros(diamond.num_nodes, dtype=np.int64)
        part = Partition(owner, num_shards=3, strategy="hash")  # 1, 2 empty
        with ShardedSimRankService(
            diamond.copy(), methods=(METHOD,), configs=CONFIG,
            shards=3, partition=part, workers=1, executor="sequential",
        ) as service:
            assert service.partition.counts() == [4, 0, 0]
            result = service.single_source(0)
            assert result.score(0) == 1.0
            assert service.shard_services[1].stats.queries == 0
            assert service.shard_services[2].stats.queries == 0

    def test_more_shards_than_nodes(self, diamond):
        with ShardedSimRankService(
            diamond.copy(), methods=(METHOD,), configs=CONFIG,
            shards=9, workers=1, executor="sequential",
        ) as service:
            results = service.single_source_many(list(range(4)))
            assert [int(r.query) for r in results] == [0, 1, 2, 3]
            service.apply_edges(added=[(0, 2)])
            assert service.single_source(2).score(2) == 1.0

    def test_batch_merges_back_in_caller_order(self, tiny_wiki):
        with make_sharded(tiny_wiki, "sequential", 4, workers=1) as service:
            results = service.single_source_many(QUERIES)
            assert [int(r.query) for r in results] == QUERIES

    def test_queries_route_to_owner_only(self, tiny_wiki):
        with make_sharded(tiny_wiki, "sequential", 2, workers=1) as service:
            node = 7
            owner = service.partition.owner_of(node)
            service.single_source(node)
            service.topk(node, 3)
            assert service.shard_services[owner].stats.queries == 2
            assert service.shard_services[1 - owner].stats.queries == 0


class TestServiceSurface:
    def test_merged_stats_and_router_counters(self, tiny_wiki):
        with make_sharded(tiny_wiki, "sequential", 2, workers=1) as service:
            service.single_source_many(QUERIES)
            service.apply_edges(added=[(0, 9)])
            stats = service.stats
            assert stats.queries == len(QUERIES)
            # one logical update, even if it spanned two shards
            assert stats.updates_applied == 1
            assert stats.syncs == 1
            assert service.epoch >= 1

    def test_cache_view_merges_shards(self, tiny_wiki):
        with make_sharded(
            tiny_wiki, "sequential", 2, workers=1, cache_size=8
        ) as service:
            assert service.cache.enabled
            service.single_source_many(QUERIES)
            service.single_source_many(QUERIES)
            snap = service.cache.snapshot()
            per_shard = [
                s.cache.snapshot() for s in service.shard_services
            ]
            assert snap["hits"] == sum(s["hits"] for s in per_shard)
            assert snap["size"] == sum(s["size"] for s in per_shard)
            assert 0.0 < snap["hit_rate"] <= 1.0

    def test_cache_disabled_by_default(self, tiny_wiki):
        with make_sharded(tiny_wiki, "sequential", 2, workers=1) as service:
            assert not service.cache.enabled

    def test_topk_many(self, tiny_wiki):
        with make_sharded(tiny_wiki, "sequential", 2, workers=1) as service:
            tops = service.topk_many(QUERIES[:4], k=3)
            assert len(tops) == 4
            assert all(len(t.scores) <= 3 for t in tops)

    def test_frozen_graph_rejects_updates(self, tiny_wiki):
        csr = CSRGraph.from_digraph(tiny_wiki)
        with ShardedSimRankService(
            csr, methods=(METHOD,), configs=CONFIG,
            shards=2, workers=1, executor="sequential",
        ) as service:
            assert service.single_source(3).score(3) == 1.0
            with pytest.raises(ConfigurationError, match="frozen"):
                service.apply_edges(added=[(0, 9)])

    def test_query_validation(self, tiny_wiki):
        with make_sharded(tiny_wiki, "sequential", 2, workers=1) as service:
            with pytest.raises(QueryError, match="out of range"):
                service.single_source(tiny_wiki.num_nodes)
            with pytest.raises(QueryError):
                service.single_source("nope")
            with pytest.raises(ConfigurationError, match="no method"):
                service.single_source(0, method="missing")

    def test_partition_instance_must_match(self, tiny_wiki):
        part = make_partition(tiny_wiki, 3, "hash")
        with pytest.raises(ConfigurationError, match="shards"):
            ShardedSimRankService(
                tiny_wiki.copy(), methods=(METHOD,), configs=CONFIG,
                shards=2, partition=part, workers=1, executor="sequential",
            )

    def test_shards_must_be_positive(self, tiny_wiki):
        with pytest.raises(ConfigurationError):
            ShardedSimRankService(
                tiny_wiki.copy(), methods=(METHOD,), configs=CONFIG,
                shards=0, workers=1, executor="sequential",
            )

    def test_close_is_idempotent_and_context_managed(self, tiny_wiki):
        service = make_sharded(tiny_wiki, "sequential", 2, workers=1)
        with service:
            service.single_source(0)
        service.close()
        service.close()

    def test_repr_names_the_shape(self, tiny_wiki):
        with make_sharded(tiny_wiki, "sequential", 2, workers=1) as service:
            text = repr(service)
            assert "shards=2" in text and "hash" in text
