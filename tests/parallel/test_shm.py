"""SharedCSRGraph: zero-copy round trips, epochs, and leak hygiene."""

import pickle

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph, DiGraph
from repro.graph.csr import SHM_LAYOUT
from repro.parallel.shm import SharedCSRGraph, ShmGraphDescriptor

try:  # the leak checks read /dev/shm directly (Linux CI and dev boxes)
    from pathlib import Path

    SHM_DIR = Path("/dev/shm")
    HAVE_SHM_DIR = SHM_DIR.is_dir()
except OSError:  # pragma: no cover - exotic platforms
    HAVE_SHM_DIR = False


def segment_names(base_name: str) -> list[str]:
    """Names under /dev/shm belonging to one SharedCSRGraph instance."""
    if not HAVE_SHM_DIR:  # pragma: no cover - exercised on Linux only
        pytest.skip("no /dev/shm to audit")
    return sorted(p.name for p in SHM_DIR.iterdir() if p.name.startswith(base_name))


@pytest.fixture()
def csr(tiny_wiki) -> CSRGraph:
    return CSRGraph.from_digraph(tiny_wiki)


class TestRoundTrip:
    def test_attach_reproduces_graph_bitwise(self, csr):
        with SharedCSRGraph.create(csr) as owner:
            attachment = SharedCSRGraph.attach(owner.descriptor)
            try:
                shared = attachment.graph
                assert shared.num_nodes == csr.num_nodes
                assert shared.num_edges == csr.num_edges
                for field, _ in SHM_LAYOUT:
                    np.testing.assert_array_equal(
                        getattr(shared, field), getattr(csr, field)
                    )
            finally:
                attachment.close()

    def test_attached_arrays_are_views_not_copies(self, csr):
        """Zero-copy: the mapped arrays own no data (their base is the shm
        buffer), so attach cost is O(1) in graph size."""
        with SharedCSRGraph.create(csr) as owner:
            attachment = SharedCSRGraph.attach(owner.descriptor)
            try:
                for field, _ in SHM_LAYOUT:
                    assert not getattr(attachment.graph, field).flags.owndata
            finally:
                attachment.close()

    def test_owner_side_graph_matches(self, csr):
        with SharedCSRGraph.create(csr) as owner:
            np.testing.assert_array_equal(owner.graph.in_indptr, csr.in_indptr)

    def test_descriptor_is_picklable(self, csr):
        with SharedCSRGraph.create(csr) as owner:
            descriptor = pickle.loads(pickle.dumps(owner.descriptor))
            assert descriptor == owner.descriptor
            assert descriptor.data_name.endswith("-g0")

    def test_empty_graph_round_trips(self):
        csr = CSRGraph.from_digraph(DiGraph(3))
        with SharedCSRGraph.create(csr) as owner:
            attachment = SharedCSRGraph.attach(owner.descriptor)
            try:
                assert attachment.graph.num_edges == 0
                assert attachment.graph.num_nodes == 3
            finally:
                attachment.close()


class TestEpochs:
    def test_publish_bumps_generation_counter(self, csr, tiny_wiki):
        with SharedCSRGraph.create(csr) as owner:
            assert owner.current_epoch() == 0
            mutated = tiny_wiki.copy()
            mutated.remove_edge(*next(iter(mutated.edges())))
            assert owner.publish(CSRGraph.from_digraph(mutated)) == 1
            assert owner.current_epoch() == 1

    def test_workers_detect_epochs_through_counter(self, csr, tiny_wiki):
        """The control segment alone tells an attachment it is stale —
        no message traffic needed."""
        with SharedCSRGraph.create(csr) as owner:
            attachment = SharedCSRGraph.attach(owner.descriptor)
            try:
                assert not attachment.stale()
                owner.publish(CSRGraph.from_digraph(tiny_wiki))
                assert attachment.stale()
                attachment.reattach(owner.descriptor)
                assert not attachment.stale()
                assert attachment.descriptor.epoch == 1
            finally:
                attachment.close()

    def test_old_generation_serves_until_released(self, csr, tiny_wiki):
        with SharedCSRGraph.create(csr) as owner:
            old_descriptor = owner.descriptor
            attachment = SharedCSRGraph.attach(old_descriptor)
            try:
                before = attachment.graph.in_indptr.copy()
                owner.publish(CSRGraph.from_digraph(tiny_wiki))
                # the old mapping still reads the old epoch's bytes
                np.testing.assert_array_equal(attachment.graph.in_indptr, before)
            finally:
                attachment.close()
            owner.release_epoch(0)
            with pytest.raises(FileNotFoundError):
                SharedCSRGraph.attach(old_descriptor)

    def test_cannot_release_live_epoch(self, csr):
        with SharedCSRGraph.create(csr) as owner:
            with pytest.raises(GraphError):
                owner.release_epoch(owner.current_epoch())

    def test_attachment_cannot_publish(self, csr):
        with SharedCSRGraph.create(csr) as owner:
            attachment = SharedCSRGraph.attach(owner.descriptor)
            try:
                with pytest.raises(GraphError):
                    attachment.publish(csr)
            finally:
                attachment.close()


class TestLeakHygiene:
    def test_close_unlinks_every_segment(self, csr, tiny_wiki):
        owner = SharedCSRGraph.create(csr)
        owner.publish(CSRGraph.from_digraph(tiny_wiki))  # two live generations
        base = owner.base_name
        assert len(segment_names(base)) == 3  # control + g0 + g1
        owner.close()
        assert segment_names(base) == []

    def test_close_is_idempotent(self, csr):
        owner = SharedCSRGraph.create(csr)
        owner.close()
        owner.close()

    def test_exception_path_unlinks(self, csr):
        base = None
        try:
            with SharedCSRGraph.create(csr) as owner:
                base = owner.base_name
                assert len(segment_names(base)) == 2
                raise RuntimeError("simulated serving failure")
        except RuntimeError:
            pass
        assert segment_names(base) == []

    def test_finalizer_unlinks_without_close(self, csr):
        """Dropping the last reference (no close call) must not leak."""
        owner = SharedCSRGraph.create(csr)
        base = owner.base_name
        assert segment_names(base)
        del owner
        import gc

        gc.collect()
        assert segment_names(base) == []

    def test_unlink_survives_pinned_views(self, csr):
        """A caller still holding array views cannot stop the unlink.

        (The pinned view itself is dead after close — reading it would be
        undefined behaviour — but leak hygiene must not depend on callers
        dropping every reference first.)"""
        owner = SharedCSRGraph.create(csr)
        base = owner.base_name
        pinned = owner.graph.out_indptr  # noqa: F841 - held across close
        owner.close()
        assert segment_names(base) == []


class TestDescriptor:
    def test_data_name_derivation(self):
        descriptor = ShmGraphDescriptor("base", 7, 10, 20)
        assert descriptor.data_name == "base-g7"
        assert descriptor.delta_name == "base-dlog"
        assert descriptor.delta_capacity == 0  # rebuild-only by default


class TestDeltaLog:
    """The bounded edge-delta overlay: O(Δ) transport for small bursts."""

    def updates(self):
        from repro.graph import EdgeUpdate

        return [EdgeUpdate("insert", 0, 9), EdgeUpdate("delete", 3, 1)]

    def test_append_then_read_round_trips(self, csr):
        with SharedCSRGraph.create(csr, delta_capacity=8) as owner:
            attachment = SharedCSRGraph.attach(owner.descriptor)
            try:
                start, stop = owner.append_deltas(self.updates())
                assert (start, stop) == (0, 2)
                assert attachment.delta_count() == 2
                assert list(attachment.read_deltas(start, stop)) == self.updates()
            finally:
                attachment.close()

    def test_appends_accumulate_and_ranges_stay_readable(self, csr):
        with SharedCSRGraph.create(csr, delta_capacity=8) as owner:
            first = owner.append_deltas(self.updates())
            second = owner.append_deltas(self.updates())
            assert second == (2, 4)
            # crash replay re-reads ranges shipped earlier in the epoch
            assert list(owner.read_deltas(*first)) == self.updates()

    def test_overflow_refused_not_truncated(self, csr):
        with SharedCSRGraph.create(csr, delta_capacity=3) as owner:
            owner.append_deltas(self.updates())
            with pytest.raises(GraphError, match="overflow"):
                owner.append_deltas(self.updates())
            assert owner.delta_count() == 2  # the refused burst left no trace

    def test_publish_compacts_log_to_empty(self, csr, tiny_wiki):
        with SharedCSRGraph.create(csr, delta_capacity=8) as owner:
            owner.append_deltas(self.updates())
            mutated = tiny_wiki.copy()
            mutated.add_edge(0, 9)
            owner.publish(mutated)
            assert owner.delta_count() == 0
            with pytest.raises(GraphError, match="delta range"):
                owner.read_deltas(0, 2)

    def test_attachment_cannot_append(self, csr):
        with SharedCSRGraph.create(csr, delta_capacity=4) as owner:
            attachment = SharedCSRGraph.attach(owner.descriptor)
            try:
                with pytest.raises(GraphError, match="creating"):
                    attachment.append_deltas(self.updates())
            finally:
                attachment.close()

    def test_no_log_configured_raises(self, csr):
        with SharedCSRGraph.create(csr) as owner:
            with pytest.raises(GraphError, match="no delta log"):
                owner.append_deltas(self.updates())

    def test_log_segment_unlinked_on_close(self, csr):
        if not HAVE_SHM_DIR:
            pytest.skip("no /dev/shm to audit")
        before = segment_names("psim-")
        owner = SharedCSRGraph.create(csr, delta_capacity=4)
        assert any(name.endswith("-dlog") for name in segment_names("psim-"))
        owner.close()
        assert segment_names("psim-") == before
