"""Property-based tests for walk/probe invariants of the batched engine.

Hypothesis drives random graphs and walk batches through the prefix trie
and the level-synchronous kernel, pinning the invariants the batched engine
relies on: trie multiplicities partition the walk budget, first-meeting
mass is a (sub-)probability, truncation is monotone in its tolerance, and
the kernel agrees with per-prefix probing on every generated instance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_engine import probe_trie_shared
from repro.core.probe import probe_deterministic_vectorized
from repro.core.walk_trie import WalkTrie
from repro.core.walks import sample_walk_batch, truncation_length
from repro.graph import CSRGraph, DiGraph

SQRT_C = 0.7


@st.composite
def graph_walks(draw):
    """A random digraph plus a seeded √c-walk batch from one query node."""
    n = draw(st.integers(min_value=3, max_value=10))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda e: e[0] != e[1])
    edges = draw(st.lists(pairs, min_size=n, max_size=4 * n, unique=True))
    csr = CSRGraph.from_digraph(DiGraph.from_edges(edges, num_nodes=n))
    query = draw(st.integers(min_value=0, max_value=n - 1))
    count = draw(st.integers(min_value=1, max_value=80))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    walks = sample_walk_batch(csr, query, count, SQRT_C, rng, max_length=6)
    return csr, query, walks


class TestTrieInvariants:
    @given(graph_walks())
    @settings(max_examples=120, deadline=None)
    def test_multiplicities_partition_the_walk_budget(self, data):
        """Root weight is R; each level's weights sum to the number of walks
        still alive at that depth — non-increasing and never exceeding R."""
        _, _, walks = data
        trie = WalkTrie.from_walks(walks)
        assert trie.num_walks == len(walks)
        sums = trie.level_weight_sums()
        previous = trie.num_walks
        for depth, level_sum in enumerate(sums, start=2):
            alive = sum(1 for w in walks if len(w) >= depth)
            assert level_sum == alive
            assert level_sum <= previous
            previous = level_sum

    @given(graph_walks())
    @settings(max_examples=120, deadline=None)
    def test_parent_weight_covers_children(self, data):
        """A prefix's multiplicity is at least the sum of its extensions'."""
        _, _, walks = data
        trie = WalkTrie.from_walks(walks)
        for li in range(len(trie.levels) - 1):
            child_total = np.zeros(len(trie.levels[li]), dtype=np.int64)
            child = trie.levels[li + 1]
            np.add.at(child_total, child.parents, child.weights)
            assert np.all(child_total <= trie.levels[li].weights)

    @given(graph_walks())
    @settings(max_examples=80, deadline=None)
    def test_prefix_weights_count_matching_walks(self, data):
        _, _, walks = data
        trie = WalkTrie.from_walks(walks)
        for prefix, weight in trie.iter_prefixes():
            matching = sum(
                1 for w in walks if tuple(w[: len(prefix)]) == tuple(prefix)
            )
            assert weight == matching


class TestProbeInvariants:
    @given(graph_walks())
    @settings(max_examples=100, deadline=None)
    def test_kernel_matches_per_prefix_probing(self, data):
        """The level-synchronous sweep equals weighted per-prefix probes."""
        csr, _, walks = data
        trie = WalkTrie.from_walks(walks)
        shared = probe_trie_shared(csr, trie, SQRT_C)
        expected = np.zeros(csr.num_nodes)
        for prefix, weight in trie.iter_prefixes():
            expected += weight * probe_deterministic_vectorized(csr, prefix, SQRT_C)
        np.testing.assert_allclose(shared, expected, rtol=0, atol=1e-9)

    @given(graph_walks())
    @settings(max_examples=100, deadline=None)
    def test_first_meeting_mass_is_a_subprobability(self, data):
        """First meetings at different steps of one walk are disjoint events,
        so a single walk's accumulated score lies in [0, 1] per node — and a
        batch average therefore does too."""
        csr, _, walks = data
        for walk in walks[:5]:
            if len(walk) < 2:
                continue
            trie = WalkTrie.from_walks([walk])
            acc = probe_trie_shared(csr, trie, SQRT_C)
            assert acc.min() >= 0.0
            assert acc.max() <= 1.0 + 1e-12
        trie = WalkTrie.from_walks(walks)
        estimates = probe_trie_shared(csr, trie, SQRT_C) / len(walks)
        assert estimates.min() >= 0.0
        assert estimates.max() <= 1.0 + 1e-12

    @given(graph_walks())
    @settings(max_examples=60, deadline=None)
    def test_per_level_scores_bounded_by_survival(self, data):
        """Each distinct prefix's probe is a probability vector bounded by
        the survival probability sqrt(c)^(depth-1) of the probing walk."""
        csr, _, walks = data
        trie = WalkTrie.from_walks(walks)
        for prefix, _ in trie.iter_prefixes():
            scores = probe_deterministic_vectorized(csr, prefix, SQRT_C)
            assert scores.min() >= 0.0
            assert scores.max() <= SQRT_C ** (len(prefix) - 1) + 1e-12

    @given(
        st.floats(min_value=1e-6, max_value=0.5),
        st.floats(min_value=1e-6, max_value=0.5),
        st.sampled_from([0.3, 0.5, 0.7, 0.9]),
    )
    @settings(max_examples=200, deadline=None)
    def test_truncation_length_monotone_in_eps_t(self, eps_a, eps_b, sqrt_c):
        """Tightening eps_t never shortens walks: l_t is non-increasing in
        eps_t (smaller tolerated truncation error => longer walks)."""
        lo, hi = sorted((eps_a, eps_b))
        assert truncation_length(lo, sqrt_c) >= truncation_length(hi, sqrt_c)
