"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, DiGraph


@st.composite
def edge_lists(draw, max_nodes=12, max_edges=40):
    """A random simple directed graph as (num_nodes, edge list)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda e: e[0] != e[1])
    edges = draw(st.lists(pairs, max_size=max_edges, unique=True))
    return n, edges


class TestDiGraphModel:
    """DiGraph against a trivial set-of-edges model."""

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_construction_matches_model(self, data):
        n, edges = data
        g = DiGraph.from_edges(edges, num_nodes=n)
        model = set(edges)
        assert g.num_edges == len(model)
        assert set(g.edges()) == model
        for node in range(n):
            assert set(g.out_neighbors(node)) == {t for s, t in model if s == node}
            assert set(g.in_neighbors(node)) == {s for s, t in model if t == node}

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_edge_count(self, data):
        n, edges = data
        g = DiGraph.from_edges(edges, num_nodes=n)
        assert sum(g.in_degree(v) for v in range(n)) == g.num_edges
        assert sum(g.out_degree(v) for v in range(n)) == g.num_edges

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_remove_all_edges_empties_graph(self, data):
        n, edges = data
        g = DiGraph.from_edges(edges, num_nodes=n)
        for s, t in edges:
            g.remove_edge(s, t)
        assert g.num_edges == 0
        assert all(g.in_degree(v) == 0 for v in range(n))

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_reverse_involution(self, data):
        n, edges = data
        g = DiGraph.from_edges(edges, num_nodes=n)
        assert g.reversed().reversed() == g

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_copy_equal_but_independent(self, data):
        n, edges = data
        g = DiGraph.from_edges(edges, num_nodes=n)
        clone = g.copy()
        assert clone == g
        if edges:
            s, t = edges[0]
            clone.remove_edge(s, t)
            assert clone != g


class TestCsrRoundTrip:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_digraph_csr_digraph_identity(self, data):
        n, edges = data
        g = DiGraph.from_edges(edges, num_nodes=n)
        assert CSRGraph.from_digraph(g).to_digraph() == g

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_csr_operators_consistent(self, data):
        n, edges = data
        csr = CSRGraph.from_edges(edges, num_nodes=n)
        P = csr.transition.toarray()
        # columns of in-degree > 0 sum to 1; others to 0
        for v in range(n):
            expected = 1.0 if csr.in_degree(v) > 0 else 0.0
            assert abs(P[:, v].sum() - expected) < 1e-12
        np.testing.assert_allclose(
            csr.backward_operator.toarray(), csr.forward_operator.toarray().T
        )

    @given(edge_lists(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_sampling_stays_in_neighbourhood(self, data, seed):
        n, edges = data
        csr = CSRGraph.from_edges(edges, num_nodes=n)
        rng = np.random.default_rng(seed)
        nodes = np.arange(n, dtype=np.int64)
        sampled = csr.sample_in_neighbors(nodes, rng)
        for node, neighbor in zip(nodes.tolist(), sampled.tolist()):
            if csr.in_degree(node) == 0:
                assert neighbor == -1
            else:
                assert neighbor in csr.in_neighbors(node).tolist()
