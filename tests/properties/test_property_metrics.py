"""Property-based tests for the evaluation metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    abs_error_max,
    abs_error_mean,
    kendall_tau,
    ndcg_at_k,
    precision_at_k,
)


@st.composite
def truth_and_ranking(draw):
    """True score vector (query = 0) plus a returned ranking of size k."""
    n = draw(st.integers(min_value=4, max_value=30))
    scores = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    truth = np.array(scores)
    truth[0] = 1.0
    k = draw(st.integers(min_value=1, max_value=n - 1))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    returned = rng.permutation(np.arange(1, n))[:k]
    return truth, returned, k


class TestMetricProperties:
    @given(truth_and_ranking())
    @settings(max_examples=150, deadline=None)
    def test_precision_in_unit_interval(self, data):
        truth, returned, k = data
        p = precision_at_k(returned, truth, k, query=0)
        assert 0.0 <= p <= 1.0

    @given(truth_and_ranking())
    @settings(max_examples=150, deadline=None)
    def test_ndcg_in_unit_interval(self, data):
        truth, returned, k = data
        v = ndcg_at_k(returned, truth, k, query=0)
        assert 0.0 <= v <= 1.0 + 1e-9

    @given(truth_and_ranking())
    @settings(max_examples=150, deadline=None)
    def test_tau_in_range(self, data):
        truth, returned, _ = data
        tau = kendall_tau(returned, truth, query=0)
        assert -1.0 <= tau <= 1.0

    @given(truth_and_ranking())
    @settings(max_examples=100, deadline=None)
    def test_ideal_ranking_maximal(self, data):
        """The exact top-k ordering achieves precision 1, NDCG 1, and at
        least any other ranking's tau."""
        truth, returned, k = data
        masked = truth.copy()
        masked[0] = -np.inf
        ideal = np.argsort(-masked, kind="stable")[:k]
        assert precision_at_k(ideal, truth, k, query=0) == 1.0
        assert ndcg_at_k(ideal, truth, k, query=0) >= ndcg_at_k(
            returned, truth, k, query=0
        ) - 1e-9
        # tau maximality holds only when the ideal list is tie-free: a tied
        # pair is neutral (contributes 0), so an ideal list containing ties
        # can score below a strictly-ordered list over different nodes
        # (hypothesis found truth=[1,1,0,1]: ideal [1,3] tau=0 < [1,2] tau=1).
        ideal_scores = truth[ideal]
        if len(set(ideal_scores.tolist())) == len(ideal_scores):
            assert kendall_tau(ideal, truth, query=0) >= kendall_tau(
                returned, truth, query=0
            ) - 1e-9

    @given(truth_and_ranking())
    @settings(max_examples=100, deadline=None)
    def test_tau_antisymmetric_under_reversal(self, data):
        truth, returned, _ = data
        if len(returned) < 2:
            return  # singleton lists are defined as tau = 1 in both directions
        forward = kendall_tau(returned, truth, query=0)
        backward = kendall_tau(returned[::-1].copy(), truth, query=0)
        assert abs(forward + backward) < 1e-9

    @given(
        st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                 min_size=2, max_size=30),
        st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                 min_size=2, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_abs_errors_consistent(self, a, b):
        size = min(len(a), len(b))
        est = np.array(a[:size])
        tru = np.array(b[:size])
        mx = abs_error_max(est, tru, query=0)
        mean = abs_error_mean(est, tru, query=0)
        assert 0.0 <= mean <= mx + 1e-12
        assert mx <= 1.0 + 1e-12
