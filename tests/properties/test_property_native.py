"""Property-based tests for the native engine's walk sampler and RNG.

Hypothesis drives random graphs and ``(seed, query)`` pairs through both
native backends, pinning the structural invariants the kernels rely on:
walks start at the query and only ever step to CSR in-neighbours, padding
never leaks node ids, the two backends agree byte-for-byte on every
generated instance, and walk streams are prefix-stable (growing the walk
budget extends the batch without rewriting earlier walks).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.native import fallback, kernels
from repro.core.native.rng import stream_base, uniform_array, walk_bases
from repro.graph import CSRGraph, DiGraph

SQRT_C = 0.7
MAX_LEN = 7


@st.composite
def graph_and_stream(draw):
    """A random digraph plus one native (seed, query, walk-count) stream."""
    n = draw(st.integers(min_value=3, max_value=12))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda e: e[0] != e[1])
    edges = draw(st.lists(pairs, min_size=n, max_size=4 * n, unique=True))
    csr = CSRGraph.from_digraph(DiGraph.from_edges(edges, num_nodes=n))
    query = draw(st.integers(min_value=0, max_value=n - 1))
    count = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**62))
    return csr, query, seed, count


def sample(impl, csr, query, seed, count, max_len=MAX_LEN):
    bases = walk_bases(stream_base(seed, query), count)
    return impl.sample_walks(
        csr.in_indptr, csr.in_indices, csr.in_degrees,
        bases, query, SQRT_C, max_len,
    )


class TestWalkInvariants:
    @given(graph_and_stream())
    @settings(max_examples=120, deadline=None)
    def test_walks_never_leave_the_in_neighbour_sets(self, data):
        """Every sampled step lands in the CSR in-neighbour set of the
        previous node — the kernels can never fabricate an edge."""
        csr, query, seed, count = data
        nodes, lengths = sample(fallback, csr, query, seed, count)
        in_neighbours = [
            set(csr.in_indices[csr.in_indptr[v]:csr.in_indptr[v + 1]].tolist())
            for v in range(csr.num_nodes)
        ]
        for i in range(count):
            assert nodes[i, 0] == query
            assert 1 <= lengths[i] <= MAX_LEN
            for step in range(1, lengths[i]):
                assert int(nodes[i, step]) in in_neighbours[int(nodes[i, step - 1])]
            assert np.all(nodes[i, lengths[i]:] == -1)

    @given(graph_and_stream())
    @settings(max_examples=120, deadline=None)
    def test_backends_agree_byte_for_byte(self, data):
        csr, query, seed, count = data
        nodes_f, lengths_f = sample(fallback, csr, query, seed, count)
        nodes_k, lengths_k = sample(kernels, csr, query, seed, count)
        np.testing.assert_array_equal(lengths_f, lengths_k)
        np.testing.assert_array_equal(nodes_f, nodes_k)

    @given(graph_and_stream())
    @settings(max_examples=80, deadline=None)
    def test_walk_streams_are_prefix_stable(self, data):
        """Walk ``i`` depends only on ``(seed, query, i)``: growing the
        batch appends walks without changing the ones already drawn."""
        csr, query, seed, count = data
        nodes_small, lengths_small = sample(fallback, csr, query, seed, count)
        nodes_big, lengths_big = sample(fallback, csr, query, seed, count + 16)
        np.testing.assert_array_equal(lengths_big[:count], lengths_small)
        np.testing.assert_array_equal(nodes_big[:count], nodes_small)


class TestRNGInvariants:
    @given(st.integers(min_value=0, max_value=2**62),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=200, deadline=None)
    def test_stream_base_is_deterministic_and_query_separated(self, seed, query):
        assert stream_base(seed, query) == stream_base(seed, query)
        assert stream_base(seed, query) != stream_base(seed, query + 1)
        assert stream_base(seed, query) != stream_base(seed + 1, query)

    @given(st.integers(min_value=0, max_value=2**62))
    @settings(max_examples=100, deadline=None)
    def test_uniforms_live_in_the_half_open_unit_interval(self, seed):
        bases = walk_bases(stream_base(seed, 0), 64)
        u = uniform_array(bases)
        assert np.all(u >= 0.0)
        assert np.all(u < 1.0)
