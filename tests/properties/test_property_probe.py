"""Property-based tests for PROBE invariants on random graphs and prefixes."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probe import (
    probe_deterministic_python,
    probe_deterministic_vectorized,
)
from repro.core.walks import sample_sqrt_c_walk
from repro.graph import CSRGraph, DiGraph


@st.composite
def graph_and_prefix(draw):
    """A connected-ish random digraph plus a valid reverse-walk prefix."""
    n = draw(st.integers(min_value=3, max_value=10))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda e: e[0] != e[1])
    edges = draw(st.lists(pairs, min_size=n, max_size=4 * n, unique=True))
    g = DiGraph.from_edges(edges, num_nodes=n)
    start = draw(st.integers(min_value=0, max_value=n - 1))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    prefix = sample_sqrt_c_walk(g, start, 0.9, rng, max_length=5)
    return g, prefix


class TestProbeInvariants:
    @given(graph_and_prefix(), st.sampled_from([0.3, 0.5, math.sqrt(0.6), 0.9]))
    @settings(max_examples=120, deadline=None)
    def test_scores_are_survival_bounded_probabilities(self, data, sqrt_c):
        """Each score is Pr[a walk from v follows the prefix pattern], which
        requires surviving len(prefix)-1 geometric stops: <= sqrt(c)^(i-1).

        (The scores of *different* nodes are probabilities of different
        walks' events, so their sum over v is NOT bounded by 1 — an earlier
        draft of this test asserted that and hypothesis refuted it.)
        """
        g, prefix = data
        if len(prefix) < 2:
            return
        scores = probe_deterministic_python(g, prefix, sqrt_c)
        bound = sqrt_c ** (len(prefix) - 1)
        assert all(0.0 < v <= bound + 1e-12 for v in scores.values())

    @given(graph_and_prefix(), st.sampled_from([0.5, math.sqrt(0.6)]))
    @settings(max_examples=120, deadline=None)
    def test_backends_agree(self, data, sqrt_c):
        g, prefix = data
        if len(prefix) < 2:
            return
        csr = CSRGraph.from_digraph(g)
        sparse_scores = probe_deterministic_python(g, prefix, sqrt_c)
        dense = probe_deterministic_vectorized(csr, prefix, sqrt_c)
        assert np.count_nonzero(dense) == len(sparse_scores)
        for node, value in sparse_scores.items():
            assert abs(dense[node] - value) < 1e-12

    @given(graph_and_prefix(), st.floats(min_value=0.001, max_value=0.2))
    @settings(max_examples=100, deadline=None)
    def test_pruning_one_sided_and_bounded(self, data, eps_p):
        """Pruning error is one-sided and bounded by (i-1) * eps_p.

        Reproduction finding (see DESIGN.md §7): the paper's Lemma 7 states a
        per-probe bound of eps_p, but its induction only accounts for one
        pruning iteration.  When Pruning rule 2 fires at several iterations
        of the same probe the errors stack; hypothesis found concrete
        counterexamples to the eps_p bound (e.g. a 3-node graph, prefix
        length 5, diff 1.44 * eps_p).  The provable bound is eps_p per
        pruning iteration, i.e. (len(prefix) - 1) * eps_p per probe, which
        is what we assert here.  Truncation keeps i small, so the end-to-end
        eps_a guarantee still holds with the paper's constants in all
        engine-level tests.
        """
        g, prefix = data
        if len(prefix) < 2:
            return
        sqrt_c = 0.7
        csr = CSRGraph.from_digraph(g)
        full = probe_deterministic_vectorized(csr, prefix, sqrt_c)
        pruned = probe_deterministic_vectorized(csr, prefix, sqrt_c, eps_p)
        diff = full - pruned
        assert diff.min() >= -1e-12
        assert diff.max() <= (len(prefix) - 1) * eps_p + 1e-12

    @given(graph_and_prefix())
    @settings(max_examples=80, deadline=None)
    def test_avoided_node_never_scored(self, data):
        """The final iteration avoids prefix[0]... actually each iteration j
        avoids u_{i-j-1}; the last one avoids u_1, so the query node can
        never appear in the output of its own probe."""
        g, prefix = data
        if len(prefix) < 2:
            return
        scores = probe_deterministic_python(g, prefix, 0.7)
        assert prefix[0] not in scores

    @given(graph_and_prefix())
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_sqrt_c(self, data):
        """Scores are pointwise non-decreasing in sqrt(c) (every path weight
        scales by sqrt(c)^steps)."""
        g, prefix = data
        if len(prefix) < 2:
            return
        low = probe_deterministic_python(g, prefix, 0.4)
        high = probe_deterministic_python(g, prefix, 0.8)
        for node, value in low.items():
            assert high.get(node, 0.0) >= value - 1e-12
