"""Property-based end-to-end invariants: on arbitrary small random graphs,
the Power Method fixed point has SimRank's defining properties, and ProbeSim
converges to it."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.power import PowerMethod
from repro.core.engine import ProbeSim
from repro.eval.metrics import abs_error_max
from repro.graph import DiGraph


@st.composite
def random_graphs(draw, max_nodes=9):
    n = draw(st.integers(min_value=3, max_value=max_nodes))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda e: e[0] != e[1])
    edges = draw(st.lists(pairs, min_size=2, max_size=3 * n, unique=True))
    return DiGraph.from_edges(edges, num_nodes=n)


class TestSimRankAxioms:
    @given(random_graphs(), st.sampled_from([0.25, 0.6, 0.8]))
    @settings(max_examples=50, deadline=None)
    def test_fixed_point_properties(self, g, c):
        S = PowerMethod(g, c=c).compute(iterations=60)
        n = g.num_nodes
        # self-similarity, symmetry, boundedness
        assert np.allclose(np.diag(S), 1.0)
        assert np.allclose(S, S.T, atol=1e-10)
        assert S.min() >= 0.0 and S.max() <= 1.0 + 1e-12
        # off-diagonal entries bounded by c (Theorem 1's s(u,v) <= c fact)
        off = S - np.diag(np.diag(S))
        assert off.max() <= c + 1e-12
        # recursion residual
        for u in range(n):
            for v in range(u + 1, n):
                in_u, in_v = g.in_neighbors(u), g.in_neighbors(v)
                if not in_u or not in_v:
                    assert S[u, v] == 0.0
                    continue
                rhs = c / (len(in_u) * len(in_v)) * sum(
                    S[x, y] for x in in_u for y in in_v
                )
                assert abs(S[u, v] - rhs) < 1e-8

    @given(random_graphs(max_nodes=7), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_probesim_tracks_ground_truth(self, g, seed):
        """On arbitrary graphs ProbeSim's estimate stays within a loose
        statistical band of the exact values (3x the nominal eps to keep the
        property nearly surely true across hypothesis examples)."""
        truth = PowerMethod(g, c=0.6).compute(iterations=60)
        query = 0
        engine = ProbeSim(g, c=0.6, eps_a=0.15, delta=0.05, seed=seed)
        result = engine.single_source(query)
        assert abs_error_max(result.scores, truth[query], query) <= 0.45
