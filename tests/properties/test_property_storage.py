"""Property-based tests (hypothesis) for the persistent storage tier.

The central property is *bit-identity of independent paths*: however messy
the input and however small the ingestion chunks, the out-of-core pipeline
must produce the same file bytes as the in-memory reference
(``write_snapshot(read_edge_list(...))``), and a snapshot must reproduce
its graph's arrays exactly.  The WAL's property is burst-split invariance:
how an update stream is chopped into appends never changes what replays.
"""

import gzip

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, DiGraph, read_edge_list
from repro.graph.csr import SHM_LAYOUT
from repro.graph.dynamic import EdgeUpdate
from repro.storage import (
    WriteAheadLog,
    attach_snapshot,
    ingest_edge_list,
    write_snapshot,
)

FILE_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def messy_edge_texts(draw):
    """Raw SNAP-style file text: sparse ids, dupes, self-loops, comments."""
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=50_000),
            min_size=2, max_size=8, unique=True,
        )
    )
    pairs = st.tuples(st.sampled_from(ids), st.sampled_from(ids))
    edges = draw(st.lists(pairs, min_size=1, max_size=30))
    lines = []
    for index, (source, target) in enumerate(edges):
        if index % 5 == 0 and draw(st.booleans()):
            lines.append("# interleaved comment")
        separator = draw(st.sampled_from([" ", "\t", "  "]))
        lines.append(f"{source}{separator}{target}")
    text = "\n".join(lines) + "\n"
    # the text must keep at least one real (non-self-loop) edge
    if all(s == t for s, t in edges):
        keep_source, keep_target = ids[0], ids[1]
        text += f"{keep_source} {keep_target}\n"
    return text


@st.composite
def update_streams(draw, max_nodes=10):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    pairs = st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    ).filter(lambda u: u[1] != u[2])
    raw = draw(st.lists(pairs, min_size=0, max_size=25))
    return tuple(EdgeUpdate(*u) for u in raw)


class TestIngestBitIdentity:
    @given(
        messy_edge_texts(),
        st.integers(min_value=1, max_value=40),
        st.booleans(),
    )
    @FILE_SETTINGS
    def test_matches_in_memory_reference(self, tmp_path, text, chunk, use_gzip):
        source = tmp_path / ("edges.txt.gz" if use_gzip else "edges.txt")
        if use_gzip:
            source.write_bytes(gzip.compress(text.encode()))
        else:
            source.write_text(text, encoding="utf-8")
        reference = tmp_path / "reference.csr"
        write_snapshot(read_edge_list(source), reference)
        out = tmp_path / "ingested.csr"
        ingest_edge_list(source, out, chunk_edges=chunk)
        assert out.read_bytes() == reference.read_bytes()
        source.unlink()
        reference.unlink()
        out.unlink()


class TestSnapshotRoundTrip:
    @given(
        st.integers(min_value=1, max_value=12).flatmap(
            lambda n: st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ).filter(lambda e: e[0] != e[1]),
                max_size=30,
                unique=True,
            ).map(lambda edges: (n, edges))
        )
    )
    @FILE_SETTINGS
    def test_arrays_survive_bitwise(self, tmp_path, data):
        n, edges = data
        csr = CSRGraph.from_digraph(DiGraph.from_edges(edges, num_nodes=n))
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        with attach_snapshot(path, verify=True) as mapped:
            shared = mapped.graph()
            for field, _ in SHM_LAYOUT:
                np.testing.assert_array_equal(
                    getattr(shared, field), getattr(csr, field)
                )
            del shared
        path.unlink()


class TestWalBurstInvariance:
    @given(update_streams(), st.data())
    @FILE_SETTINGS
    def test_any_burst_split_replays_the_same(self, tmp_path, stream, data):
        path = tmp_path / "w.log"
        with WriteAheadLog.create(path, generation=3) as wal:
            remaining = list(stream)
            while remaining:
                size = data.draw(
                    st.integers(min_value=1, max_value=len(remaining)),
                    label="burst size",
                )
                wal.append(remaining[:size])
                remaining = remaining[size:]
        tail = WriteAheadLog.replay(path)
        assert tail.updates == stream
        assert tail.torn_bytes == 0
        path.unlink()
