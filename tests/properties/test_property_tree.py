"""Property-based tests for the reverse-reachability tree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import ReachabilityTree


@st.composite
def walk_batches(draw):
    count = draw(st.integers(min_value=1, max_value=60))
    walks = []
    for _ in range(count):
        tail = draw(
            st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=6)
        )
        walks.append([0] + tail)
    return walks


class TestTreeProperties:
    @given(walk_batches())
    @settings(max_examples=120, deadline=None)
    def test_weights_equal_prefix_multiplicities(self, walks):
        tree = ReachabilityTree.from_walks(walks)
        assert tree.num_walks == len(walks)
        for path, weight in tree.iter_prefixes():
            count = sum(1 for w in walks if tuple(w[: len(path)]) == tuple(path))
            assert weight == count

    @given(walk_batches())
    @settings(max_examples=120, deadline=None)
    def test_children_weights_sum_at_most_parent(self, walks):
        tree = ReachabilityTree.from_walks(walks)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            child_sum = sum(c.weight for c in node.children.values())
            assert child_sum <= node.weight
            stack.extend(node.children.values())

    @given(walk_batches())
    @settings(max_examples=100, deadline=None)
    def test_prefix_set_is_exactly_all_walk_prefixes(self, walks):
        tree = ReachabilityTree.from_walks(walks)
        expected = {
            tuple(w[:i]) for w in walks for i in range(2, len(w) + 1)
        }
        actual = {tuple(p) for p, _ in tree.iter_prefixes()}
        assert actual == expected

    @given(walk_batches())
    @settings(max_examples=100, deadline=None)
    def test_insertion_order_irrelevant(self, walks):
        import itertools

        forward = ReachabilityTree.from_walks(walks)
        backward = ReachabilityTree.from_walks(list(reversed(walks)))
        assert dict(
            (tuple(p), w) for p, w in forward.iter_prefixes()
        ) == dict((tuple(p), w) for p, w in backward.iter_prefixes())

    @given(walk_batches())
    @settings(max_examples=80, deadline=None)
    def test_depth_matches_longest_walk(self, walks):
        tree = ReachabilityTree.from_walks(walks)
        assert tree.max_depth() == max(len(w) for w in walks)
