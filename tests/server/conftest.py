"""Shared harness for the HTTP serving tests.

Everything the app/loadgen tests need to exercise the front door over real
sockets without real engines: a duck-typed stub service that records every
call it receives (the "did the shed request touch the pool?" assertions
read that log), deterministic fake result objects that satisfy the
serializers, a minimal keep-alive client, and ``serve`` — the one-loop
runner that starts an app on a free port, runs a scenario coroutine, and
tears the app down in the same event loop.
"""

from __future__ import annotations

import asyncio
import json
import time
import types

import pytest

from repro.api.service import ServiceStats
from repro.server import ServerConfig, SimRankHTTPApp
from repro.server.http import read_response


class FakeTopK:
    """Stands in for :class:`repro.core.results.TopKResult` in serializers."""

    def __init__(self, query: int, k: int) -> None:
        self.query = query
        self.method = "stub"
        self.k = k

    def as_pairs(self):
        return [[int(self.query), 0.5]]


class FakeResult:
    """Stands in for a single-source result in :func:`serialize_result`."""

    def __init__(self, query: int) -> None:
        self.query = query
        self.method = "stub"
        self.num_walks = 100

    def topk(self, limit: int) -> FakeTopK:
        return FakeTopK(self.query, limit)


class StubService:
    """Duck-typed ``QueryServiceBase`` stand-in that records every call.

    ``gate`` (a ``threading.Event``) blocks each service call on the
    dispatch thread until the test releases it — that is how the admission
    tests hold a lane full.  ``delay`` sleeps instead, for deadline tests.
    """

    def __init__(self, delay: float = 0.0, gate=None, epoch: int | None = None):
        self.stats = ServiceStats()
        self.calls: list[tuple] = []
        self.delay = delay
        self.gate = gate
        self.closed = 0
        if epoch is not None:
            self.epoch = epoch

    @property
    def methods(self) -> list[str]:
        return ["stub"]

    def _work(self) -> None:
        if self.gate is not None:
            assert self.gate.wait(timeout=30), "test gate never released"
        if self.delay:
            time.sleep(self.delay)

    def single_source(self, query, method=None):
        self.calls.append(("single_source", query))
        self._work()
        return FakeResult(query)

    def single_source_many(self, queries, method=None):
        self.calls.append(("single_source_many", tuple(queries)))
        self._work()
        return [FakeResult(q) for q in queries]

    def topk(self, query, k, method=None):
        self.calls.append(("topk", query, k))
        self._work()
        return FakeTopK(query, k)

    def topk_many(self, queries, k, method=None):
        self.calls.append(("topk_many", tuple(queries), k))
        self._work()
        return [FakeTopK(q, k) for q in queries]

    def apply_edges(self, added=(), removed=()):
        self.calls.append(("apply_edges", tuple(added), tuple(removed)))
        self._work()
        return len(added) + len(removed)

    def close(self) -> None:
        self.closed += 1


class Client:
    """One keep-alive connection speaking just enough HTTP for the tests."""

    def __init__(self, port: int, host: str = "127.0.0.1") -> None:
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "Client":
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def __aexit__(self, *exc) -> None:
        self.writer.close()

    async def request(self, method: str, path: str, payload=None,
                      body: bytes | None = None, headers=()):
        """Send one request and parse the response (None body on EOF)."""
        if body is None:
            body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        for name, value in headers:
            head += f"{name}: {value}\r\n"
        self.writer.write(head.encode("ascii") + b"\r\n" + body)
        await self.writer.drain()
        return await read_response(self.reader)


def serve(service, scenario, **config_kwargs):
    """Run ``scenario(app)`` against a live app on a free port, one loop.

    The app binds port 0, the scenario coroutine gets the started app, and
    teardown (``aclose``) runs in the same event loop whether the scenario
    passed or raised.  The injected service is left open for the test to
    inspect.  Returns the scenario's return value.
    """
    config = ServerConfig(host="127.0.0.1", port=0, **config_kwargs)

    async def main():
        app = SimRankHTTPApp(service, config)
        await app.start()
        try:
            return await scenario(app)
        finally:
            await app.aclose(close_service=False)

    return asyncio.run(main())


@pytest.fixture
def harness():
    """Namespace of serving-test helpers (classes + the ``serve`` runner)."""
    return types.SimpleNamespace(
        StubService=StubService,
        FakeResult=FakeResult,
        FakeTopK=FakeTopK,
        Client=Client,
        serve=serve,
    )
