"""Unit tests for bounded-lane admission control and request deadlines."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.server.admission import LANES, AdmissionController, Deadline


class OffsetLoop(asyncio.SelectorEventLoop):
    """An event loop whose clock runs 1000s ahead of ``time.monotonic``.

    Loops are free to pick any monotonic reference; this one exaggerates
    the skew so a deadline comparing timestamps across the two clocks
    fails loudly instead of flaking.
    """

    def time(self) -> float:
        return super().time() + 1000.0


class TestDeadline:
    def test_none_means_no_deadline(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired

    def test_remaining_counts_down_and_clamps_at_zero(self):
        deadline = Deadline(0.01)
        first = deadline.remaining()
        assert 0.0 < first <= 0.01
        time.sleep(0.02)
        assert deadline.remaining() == 0.0
        assert deadline.expired

    @pytest.mark.parametrize("seconds", [0, -1.5])
    def test_non_positive_budget_is_rejected(self, seconds):
        with pytest.raises(ConfigurationError, match="deadline"):
            Deadline(seconds)

    def test_pinned_to_construction_clock_across_loop_boundary(self):
        """Regression: a Deadline built before the loop starts (the
        CLI/serve startup path) must not compare its start timestamp
        against a different clock once the loop is running.  With the
        clocks 1000s apart, the old per-call clock choice reads either
        already-expired or never-expiring."""
        deadline = Deadline(5.0)  # no running loop: pins time.monotonic

        async def read() -> float:
            return deadline.remaining()

        loop = OffsetLoop()
        try:
            remaining = loop.run_until_complete(read())
        finally:
            loop.close()
        assert 4.0 < remaining <= 5.0
        assert not deadline.expired

    def test_constructed_inside_loop_uses_loop_clock(self):
        loop = OffsetLoop()

        async def build_and_read() -> float:
            deadline = Deadline(5.0)
            await asyncio.sleep(0)
            return deadline.remaining()

        try:
            remaining = loop.run_until_complete(build_and_read())
        finally:
            loop.close()
        assert 4.0 < remaining <= 5.0


class TestAdmissionControllerConfig:
    def test_default_capacity_on_every_lane(self):
        controller = AdmissionController()
        assert set(controller.lanes) == set(LANES)
        assert all(
            lane.capacity == AdmissionController.DEFAULT_CAPACITY
            for lane in controller.lanes.values()
        )

    def test_int_capacity_applies_to_all_lanes(self):
        controller = AdmissionController(3)
        assert all(lane.capacity == 3 for lane in controller.lanes.values())

    def test_dict_capacity_with_default_fallback(self):
        controller = AdmissionController({"update": 1, "topk": 5})
        assert controller.lanes["update"].capacity == 1
        assert controller.lanes["topk"].capacity == 5
        assert (
            controller.lanes["batch"].capacity
            == AdmissionController.DEFAULT_CAPACITY
        )

    def test_unknown_lane_in_dict_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown admission lanes"):
            AdmissionController({"nope": 4})

    @pytest.mark.parametrize("capacity", [0, -2, {"topk": 0}])
    def test_non_positive_capacity_is_rejected(self, capacity):
        with pytest.raises(ConfigurationError, match="positive"):
            AdmissionController(capacity)

    def test_non_positive_retry_after_is_rejected(self):
        with pytest.raises(ConfigurationError, match="retry_after"):
            AdmissionController(retry_after=0)


class TestAdmit:
    def test_admit_tracks_in_flight_and_peak(self):
        controller = AdmissionController(2)
        lane = controller.lanes["topk"]
        with controller.admit("topk"):
            assert lane.in_flight == 1
            with controller.admit("topk"):
                assert lane.in_flight == 2
        assert lane.in_flight == 0
        assert lane.peak_in_flight == 2
        assert lane.admitted == 2
        assert lane.shed == 0

    def test_full_lane_sheds_synchronously(self):
        controller = AdmissionController(1, retry_after=2.5)
        with controller.admit("single_source"):
            with pytest.raises(AdmissionError) as exc_info:
                with controller.admit("single_source"):
                    pass
        error = exc_info.value
        assert error.lane == "single_source"
        assert error.capacity == 1
        assert error.retry_after == 2.5
        assert "retry after 2.5s" in str(error)
        assert controller.lanes["single_source"].shed == 1
        # the shed never occupied the lane
        assert controller.lanes["single_source"].in_flight == 0

    def test_lanes_are_independent(self):
        controller = AdmissionController({"update": 1})
        with controller.admit("update"):
            # reads keep flowing while the update lane is full
            with controller.admit("single_source"):
                pass
            with pytest.raises(AdmissionError):
                with controller.admit("update"):
                    pass

    def test_slot_released_when_the_request_raises(self):
        controller = AdmissionController(1)
        with pytest.raises(RuntimeError):
            with controller.admit("batch"):
                raise RuntimeError("handler blew up")
        assert controller.lanes["batch"].in_flight == 0

    def test_unknown_lane_is_rejected(self):
        controller = AdmissionController()
        with pytest.raises(ConfigurationError, match="unknown admission lane"):
            with controller.admit("nope"):
                pass

    def test_record_timeout(self):
        controller = AdmissionController()
        controller.record_timeout("topk")
        assert controller.lanes["topk"].timeouts == 1


class TestCompletedAccounting:
    def test_normal_exit_settles_as_completed(self):
        controller = AdmissionController()
        with controller.admit("topk"):
            pass
        lane = controller.lanes["topk"]
        assert lane.completed == 1
        assert lane.timeouts == 0
        assert lane.admitted == lane.completed + lane.timeouts

    def test_permit_timeout_settles_as_timeout_not_completed(self):
        controller = AdmissionController()
        with controller.admit("topk") as permit:
            permit.record_timeout()
        lane = controller.lanes["topk"]
        assert lane.timeouts == 1
        assert lane.completed == 0
        assert lane.admitted == lane.completed + lane.timeouts

    def test_raised_block_still_settles_exactly_once(self):
        controller = AdmissionController()
        with pytest.raises(RuntimeError):
            with controller.admit("batch"):
                raise RuntimeError("handler blew up")
        lane = controller.lanes["batch"]
        assert lane.completed == 1
        assert lane.admitted == lane.completed + lane.timeouts

    def test_controller_record_timeout_moves_a_completed_request(self):
        """Back-compat path: detecting expiry after the block exited must
        re-classify the request, not double-count it."""
        controller = AdmissionController()
        with controller.admit("topk"):
            pass
        controller.record_timeout("topk")
        lane = controller.lanes["topk"]
        assert lane.completed == 0
        assert lane.timeouts == 1
        assert lane.admitted == lane.completed + lane.timeouts

    def test_invariant_under_concurrent_admits_and_expiries(self):
        """The ISSUE's broken invariant: admitted-then-cancelled requests
        must land in exactly one terminal counter, even when admits, sheds,
        deadline expiries, and clean completions interleave."""
        controller = AdmissionController(8)

        async def request(i: int) -> None:
            await asyncio.sleep((i % 5) * 0.004)  # stagger arrivals
            work = 0.05 if i % 3 == 0 else 0.0
            try:
                with controller.admit("batch") as permit:
                    try:
                        await asyncio.wait_for(
                            asyncio.sleep(work), timeout=0.01
                        )
                    except (asyncio.TimeoutError, TimeoutError):
                        permit.record_timeout()
            except AdmissionError:
                pass

        asyncio.run(self._run_requests(request, count=60))
        lane = controller.lanes["batch"]
        assert lane.in_flight == 0
        assert lane.timeouts > 0
        assert lane.completed > 0
        assert lane.admitted == lane.completed + lane.timeouts
        assert lane.admitted + lane.shed == 60

    @staticmethod
    async def _run_requests(request, count: int) -> None:
        await asyncio.gather(*(request(i) for i in range(count)))

    def test_completed_in_metrics(self):
        controller = AdmissionController()
        with controller.admit("single_source"):
            pass
        with controller.admit("single_source") as permit:
            permit.record_timeout()
        metrics = controller.metrics()
        assert metrics["admission_single_source_completed"] == 1
        assert metrics["admission_single_source_timeouts"] == 1
        assert metrics["admission_single_source_admitted"] == 2


class TestMetrics:
    def test_flat_counters_for_every_lane(self):
        controller = AdmissionController(1)
        with controller.admit("topk"):
            pass
        with controller.admit("topk"):
            with pytest.raises(AdmissionError):
                with controller.admit("topk"):
                    pass
        controller.record_timeout("topk")
        metrics = controller.metrics()
        assert metrics["admission_topk_capacity"] == 1
        assert metrics["admission_topk_admitted"] == 2
        assert metrics["admission_topk_shed"] == 1
        assert metrics["admission_topk_timeouts"] == 1
        assert metrics["admission_topk_peak_in_flight"] == 1
        assert metrics["admission_topk_in_flight"] == 0
        for lane in LANES:
            assert f"admission_{lane}_admitted" in metrics
