"""Unit tests for bounded-lane admission control and request deadlines."""

from __future__ import annotations

import time

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.server.admission import LANES, AdmissionController, Deadline


class TestDeadline:
    def test_none_means_no_deadline(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired

    def test_remaining_counts_down_and_clamps_at_zero(self):
        deadline = Deadline(0.01)
        first = deadline.remaining()
        assert 0.0 < first <= 0.01
        time.sleep(0.02)
        assert deadline.remaining() == 0.0
        assert deadline.expired

    @pytest.mark.parametrize("seconds", [0, -1.5])
    def test_non_positive_budget_is_rejected(self, seconds):
        with pytest.raises(ConfigurationError, match="deadline"):
            Deadline(seconds)


class TestAdmissionControllerConfig:
    def test_default_capacity_on_every_lane(self):
        controller = AdmissionController()
        assert set(controller.lanes) == set(LANES)
        assert all(
            lane.capacity == AdmissionController.DEFAULT_CAPACITY
            for lane in controller.lanes.values()
        )

    def test_int_capacity_applies_to_all_lanes(self):
        controller = AdmissionController(3)
        assert all(lane.capacity == 3 for lane in controller.lanes.values())

    def test_dict_capacity_with_default_fallback(self):
        controller = AdmissionController({"update": 1, "topk": 5})
        assert controller.lanes["update"].capacity == 1
        assert controller.lanes["topk"].capacity == 5
        assert (
            controller.lanes["batch"].capacity
            == AdmissionController.DEFAULT_CAPACITY
        )

    def test_unknown_lane_in_dict_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown admission lanes"):
            AdmissionController({"nope": 4})

    @pytest.mark.parametrize("capacity", [0, -2, {"topk": 0}])
    def test_non_positive_capacity_is_rejected(self, capacity):
        with pytest.raises(ConfigurationError, match="positive"):
            AdmissionController(capacity)

    def test_non_positive_retry_after_is_rejected(self):
        with pytest.raises(ConfigurationError, match="retry_after"):
            AdmissionController(retry_after=0)


class TestAdmit:
    def test_admit_tracks_in_flight_and_peak(self):
        controller = AdmissionController(2)
        lane = controller.lanes["topk"]
        with controller.admit("topk"):
            assert lane.in_flight == 1
            with controller.admit("topk"):
                assert lane.in_flight == 2
        assert lane.in_flight == 0
        assert lane.peak_in_flight == 2
        assert lane.admitted == 2
        assert lane.shed == 0

    def test_full_lane_sheds_synchronously(self):
        controller = AdmissionController(1, retry_after=2.5)
        with controller.admit("single_source"):
            with pytest.raises(AdmissionError) as exc_info:
                with controller.admit("single_source"):
                    pass
        error = exc_info.value
        assert error.lane == "single_source"
        assert error.capacity == 1
        assert error.retry_after == 2.5
        assert "retry after 2.5s" in str(error)
        assert controller.lanes["single_source"].shed == 1
        # the shed never occupied the lane
        assert controller.lanes["single_source"].in_flight == 0

    def test_lanes_are_independent(self):
        controller = AdmissionController({"update": 1})
        with controller.admit("update"):
            # reads keep flowing while the update lane is full
            with controller.admit("single_source"):
                pass
            with pytest.raises(AdmissionError):
                with controller.admit("update"):
                    pass

    def test_slot_released_when_the_request_raises(self):
        controller = AdmissionController(1)
        with pytest.raises(RuntimeError):
            with controller.admit("batch"):
                raise RuntimeError("handler blew up")
        assert controller.lanes["batch"].in_flight == 0

    def test_unknown_lane_is_rejected(self):
        controller = AdmissionController()
        with pytest.raises(ConfigurationError, match="unknown admission lane"):
            with controller.admit("nope"):
                pass

    def test_record_timeout(self):
        controller = AdmissionController()
        controller.record_timeout("topk")
        assert controller.lanes["topk"].timeouts == 1


class TestMetrics:
    def test_flat_counters_for_every_lane(self):
        controller = AdmissionController(1)
        with controller.admit("topk"):
            pass
        with controller.admit("topk"):
            with pytest.raises(AdmissionError):
                with controller.admit("topk"):
                    pass
        controller.record_timeout("topk")
        metrics = controller.metrics()
        assert metrics["admission_topk_capacity"] == 1
        assert metrics["admission_topk_admitted"] == 2
        assert metrics["admission_topk_shed"] == 1
        assert metrics["admission_topk_timeouts"] == 1
        assert metrics["admission_topk_peak_in_flight"] == 1
        assert metrics["admission_topk_in_flight"] == 0
        for lane in LANES:
            assert f"admission_{lane}_admitted" in metrics
