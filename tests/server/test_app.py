"""End-to-end tests of the HTTP app over real sockets.

The cheap paths (routing, validation, admission, deadlines) run against
the recording stub service from ``conftest``; the bit-exactness contract
runs against real engines with ``query_seeded`` configs.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.api.service import SimRankService
from repro.errors import ConfigurationError
from repro.server import ServerConfig, SimRankHTTPApp, serialize_result, serialize_topk


class TestOpsRoutes:
    def test_healthz(self, harness):
        service = harness.StubService(epoch=3)

        async def scenario(app):
            async with harness.Client(app.port) as client:
                return await client.request("GET", "/healthz")

        response = harness.serve(service, scenario)
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload == {
            "status": "ok", "methods": ["stub"], "coalesce": True, "epoch": 3,
        }

    def test_metrics_exposition(self, harness):
        service = harness.StubService()

        async def scenario(app):
            async with harness.Client(app.port) as client:
                ok = await client.request(
                    "POST", "/single_source", {"query": 4}
                )
                assert ok.status == 200
                return await client.request("GET", "/metrics")

        response = harness.serve(service, scenario)
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/plain")
        text = response.body.decode()
        assert "# TYPE repro_http_requests_total gauge" in text
        assert "repro_http_responses_200 1" in text
        assert "repro_admission_single_source_admitted 1" in text
        assert "repro_coalesce_batches 1" in text
        assert "repro_queries" in text  # ServiceStats rows come through

    def test_port_before_start_is_an_error(self, harness):
        app = SimRankHTTPApp(harness.StubService(), ServerConfig(port=0))
        with pytest.raises(ConfigurationError, match="not started"):
            app.port


class TestQueryRoutes:
    def test_single_source_body_is_the_canonical_serialization(self, harness):
        service = harness.StubService()

        async def scenario(app):
            async with harness.Client(app.port) as client:
                return await client.request(
                    "POST", "/single_source", {"query": 7, "limit": 5}
                )

        response = harness.serve(service, scenario)
        assert response.status == 200
        assert response.body == serialize_result(harness.FakeResult(7), 5)

    def test_topk_body_is_the_canonical_serialization(self, harness):
        service = harness.StubService()

        async def scenario(app):
            async with harness.Client(app.port) as client:
                return await client.request(
                    "POST", "/topk", {"query": 2, "k": 3}
                )

        response = harness.serve(service, scenario)
        assert response.status == 200
        assert response.body == serialize_topk(harness.FakeTopK(2, 3))

    def test_batch_routes_wrap_results(self, harness):
        service = harness.StubService()

        async def scenario(app):
            async with harness.Client(app.port) as client:
                many = await client.request(
                    "POST", "/single_source_many", {"queries": [1, 2]}
                )
                topk = await client.request(
                    "POST", "/topk_many", {"queries": [3], "k": 2}
                )
                return many, topk

        many, topk = harness.serve(service, scenario)
        assert many.status == 200
        expected = b'{"results":[%s,%s]}' % (
            serialize_result(harness.FakeResult(1), 10),
            serialize_result(harness.FakeResult(2), 10),
        )
        assert many.body == expected
        assert topk.status == 200
        assert json.loads(topk.body)["results"][0]["k"] == 2
        assert ("topk_many", (3,), 2) in service.calls

    def test_apply_edges(self, harness):
        service = harness.StubService()

        async def scenario(app):
            async with harness.Client(app.port) as client:
                return await client.request(
                    "POST", "/apply_edges",
                    {"added": [[1, 2]], "removed": [[3, 4]]},
                )

        response = harness.serve(service, scenario)
        assert response.status == 200
        assert json.loads(response.body) == {"applied": 2}
        assert ("apply_edges", ((1, 2),), ((3, 4),)) in service.calls

    def test_keep_alive_serves_multiple_requests(self, harness):
        service = harness.StubService()

        async def scenario(app):
            async with harness.Client(app.port) as client:
                first = await client.request("POST", "/topk", {"query": 1})
                second = await client.request("POST", "/topk", {"query": 2})
                return first, second

        first, second = harness.serve(service, scenario)
        assert first.status == second.status == 200
        assert json.loads(second.body)["query"] == 2


class TestErrorMapping:
    def _one(self, harness, service, *request_args, **request_kwargs):
        async def scenario(app):
            async with harness.Client(app.port) as client:
                return await client.request(*request_args, **request_kwargs)

        return harness.serve(service, scenario)

    def test_unknown_route_is_404(self, harness):
        response = self._one(harness, harness.StubService(), "GET", "/nope")
        assert response.status == 404

    def test_wrong_verb_is_405_with_allow(self, harness):
        response = self._one(harness, harness.StubService(), "GET", "/topk")
        assert response.status == 405
        assert response.headers["allow"] == "POST"

    def test_invalid_json_is_400(self, harness):
        response = self._one(
            harness, harness.StubService(), "POST", "/topk", body=b"{nope"
        )
        assert response.status == 400
        error = json.loads(response.body)["error"]
        assert error["code"] == "bad_request"
        assert "JSON" in error["message"]

    @pytest.mark.parametrize("payload", [
        {},                       # missing query
        {"query": "three"},       # wrong type
        {"query": True},          # bool is not an int here
        {"query": 1, "k": 0},     # non-positive k
        {"query": 1, "method": 7},
        {"query": 1, "deadline_s": -1},
    ])
    def test_bad_payloads_are_400(self, harness, payload):
        response = self._one(
            harness, harness.StubService(), "POST", "/topk", payload
        )
        assert response.status == 400

    def test_empty_queries_list_is_400(self, harness):
        response = self._one(
            harness, harness.StubService(),
            "POST", "/single_source_many", {"queries": []},
        )
        assert response.status == 400

    def test_apply_edges_without_edges_is_400(self, harness):
        response = self._one(
            harness, harness.StubService(), "POST", "/apply_edges", {}
        )
        assert response.status == 400

    def test_oversized_body_is_413(self, harness):
        async def scenario(app):
            async with harness.Client(app.port) as client:
                return await client.request("POST", "/topk", body=b"x" * 200)

        response = harness.serve(
            harness.StubService(), scenario, max_body=64
        )
        assert response.status == 413
        assert response.headers["connection"] == "close"

    def test_service_bug_is_500_not_a_dead_loop(self, harness):
        class ExplodingService(harness.StubService):
            def topk(self, query, k, method=None):
                raise RuntimeError("boom")

        service = ExplodingService()

        async def scenario(app):
            async with harness.Client(app.port) as client:
                failed = await client.request("POST", "/topk", {"query": 1})
                alive = await client.request("GET", "/healthz")
                return failed, alive

        failed, alive = harness.serve(service, scenario, coalesce=False)
        assert failed.status == 500
        error = json.loads(failed.body)["error"]
        assert error["code"] == "internal"
        assert "RuntimeError" in error["message"]
        assert alive.status == 200


class TestAPIVersioning:
    """/v1 is canonical; bare paths are byte-identical deprecated aliases."""

    ALIAS_LINK = '</v1/topk>; rel="successor-version"'

    def test_v1_and_alias_answer_identical_bytes(self, harness):
        service = harness.StubService()
        routes = [
            ("/single_source", {"query": 7, "limit": 5}),
            ("/topk", {"query": 2, "k": 3}),
            ("/single_source_many", {"queries": [1, 2]}),
            ("/topk_many", {"queries": [3], "k": 2}),
            ("/apply_edges", {"added": [[1, 2]]}),
        ]

        async def scenario(app):
            async with harness.Client(app.port) as client:
                pairs = []
                for path, payload in routes:
                    versioned = await client.request(
                        "POST", "/v1" + path, payload
                    )
                    alias = await client.request("POST", path, payload)
                    pairs.append((path, versioned, alias))
                return pairs

        for path, versioned, alias in harness.serve(
            service, scenario, coalesce=False
        ):
            assert versioned.status == alias.status == 200, path
            assert versioned.body == alias.body, path

    def test_alias_announces_its_successor(self, harness):
        service = harness.StubService()

        async def scenario(app):
            async with harness.Client(app.port) as client:
                alias = await client.request("POST", "/topk", {"query": 1})
                versioned = await client.request(
                    "POST", "/v1/topk", {"query": 1}
                )
                return alias, versioned

        alias, versioned = harness.serve(service, scenario, coalesce=False)
        assert alias.headers["deprecation"] == "true"
        assert alias.headers["link"] == self.ALIAS_LINK
        assert "deprecation" not in versioned.headers
        assert "link" not in versioned.headers

    def test_alias_errors_also_announce_the_successor(self, harness):
        # the forwarding address rides on error responses too — a client
        # seeing only failures still learns where the API moved
        service = harness.StubService()

        async def scenario(app):
            async with harness.Client(app.port) as client:
                return await client.request("GET", "/topk")

        response = harness.serve(service, scenario)
        assert response.status == 405
        assert response.headers["allow"] == "POST"
        assert response.headers["deprecation"] == "true"
        assert response.headers["link"] == self.ALIAS_LINK

    def test_ops_routes_are_unversioned(self, harness):
        service = harness.StubService()

        async def scenario(app):
            async with harness.Client(app.port) as client:
                bare = await client.request("GET", "/healthz")
                versioned = await client.request("GET", "/v1/healthz")
                return bare, versioned

        bare, versioned = harness.serve(service, scenario)
        assert bare.status == 200
        assert "deprecation" not in bare.headers
        assert versioned.status == 404


class TestErrorEnvelope:
    """Every 4xx/5xx answers ``{"error": {"code", "message", ...}}``."""

    @staticmethod
    def check_envelope(response, code):
        payload = json.loads(response.body)
        assert set(payload) == {"error"}
        error = payload["error"]
        assert error["code"] == code
        assert isinstance(error["message"], str) and error["message"]
        assert set(error) <= {"code", "message", "retry_after"}
        return error

    @pytest.mark.parametrize("method, path, kwargs, status, code", [
        ("GET", "/nope", {}, 404, "not_found"),
        ("GET", "/v1/topk", {}, 405, "method_not_allowed"),
        ("POST", "/v1/topk", {"body": b"{nope"}, 400, "bad_request"),
        ("POST", "/v1/topk", {"payload": {"query": "x"}}, 400, "bad_request"),
    ])
    def test_envelope_shape(self, harness, method, path, kwargs, status, code):
        async def scenario(app):
            async with harness.Client(app.port) as client:
                return await client.request(method, path, **kwargs)

        response = harness.serve(harness.StubService(), scenario)
        assert response.status == status
        self.check_envelope(response, code)

    def test_oversized_body_envelope(self, harness):
        async def scenario(app):
            async with harness.Client(app.port) as client:
                return await client.request(
                    "POST", "/v1/topk", body=b"x" * 200
                )

        response = harness.serve(
            harness.StubService(), scenario, max_body=64
        )
        assert response.status == 413
        self.check_envelope(response, "payload_too_large")


class TestAdmission:
    def test_full_lane_sheds_503_before_touching_the_pool(self, harness):
        gate = threading.Event()
        service = harness.StubService(gate=gate)

        async def scenario(app):
            async with harness.Client(app.port) as first, \
                    harness.Client(app.port) as second:
                holder = asyncio.ensure_future(
                    first.request("POST", "/single_source", {"query": 1})
                )
                # wait until request 1 is actually occupying the lane
                while not service.calls:
                    await asyncio.sleep(0.005)
                shed = await second.request(
                    "POST", "/single_source", {"query": 2}
                )
                assert shed.status == 503
                assert shed.headers["retry-after"] == "1"
                # the shed request never reached the service: the only
                # dispatched call is still the lane holder's
                assert service.calls == [("single_source", 1)]
                gate.set()
                held = await holder
                assert held.status == 200
                return shed

        shed = harness.serve(
            service, scenario, coalesce=False, admission_capacity=1
        )
        error = json.loads(shed.body)["error"]
        assert error["code"] == "overloaded"
        assert "admission lane 'single_source' is full" in error["message"]
        # the Retry-After header is mirrored into the body for JSON-only
        # clients
        assert error["retry_after"] == 1.0

    def test_lanes_shed_independently(self, harness):
        gate = threading.Event()
        service = harness.StubService(gate=gate)

        async def scenario(app):
            async with harness.Client(app.port) as first, \
                    harness.Client(app.port) as second:
                holder = asyncio.ensure_future(
                    first.request("POST", "/single_source", {"query": 1})
                )
                while not service.calls:
                    await asyncio.sleep(0.005)
                # single_source lane is full; the topk lane is not.  The
                # topk request completes only after the gate opens (one
                # dispatch thread), so release the gate first.
                gate.set()
                other_lane = await second.request(
                    "POST", "/topk", {"query": 3}
                )
                assert other_lane.status == 200
                assert (await holder).status == 200

        harness.serve(service, scenario, coalesce=False, admission_capacity=1)


class TestDeadlines:
    def test_expired_deadline_is_504_and_counted(self, harness):
        service = harness.StubService(delay=0.3)

        async def scenario(app):
            async with harness.Client(app.port) as client:
                response = await client.request(
                    "POST", "/topk", {"query": 1, "deadline_s": 0.05}
                )
            assert app.admission.lanes["topk"].timeouts == 1
            return response

        response = harness.serve(service, scenario, coalesce=False)
        assert response.status == 504
        error = json.loads(response.body)["error"]
        assert error["code"] == "deadline_exceeded"
        assert "deadline of 0.05s expired" in error["message"]

    def test_client_may_tighten_but_not_widen_the_deadline(self, harness):
        service = harness.StubService(delay=0.3)

        async def scenario(app):
            async with harness.Client(app.port) as client:
                return await client.request(
                    "POST", "/topk", {"query": 1, "deadline_s": 60.0}
                )

        response = harness.serve(
            service, scenario, coalesce=False, deadline_s=0.05
        )
        assert response.status == 504
        # the server budget won, not the client's 60s
        assert "0.05s" in json.loads(response.body)["error"]["message"]

    def test_deadline_mid_coalesce_cancels_only_the_expired_request(
        self, harness
    ):
        service = harness.StubService()

        async def scenario(app):
            async with harness.Client(app.port) as doomed_client, \
                    harness.Client(app.port) as survivor_client:
                doomed = asyncio.ensure_future(doomed_client.request(
                    "POST", "/single_source",
                    {"query": 1, "deadline_s": 0.05},
                ))
                survivor = asyncio.ensure_future(survivor_client.request(
                    "POST", "/single_source", {"query": 2}
                ))
                responses = await asyncio.gather(doomed, survivor)
            # the expired request was answered 504 without ever reaching
            # the service; its batch-mate was dispatched undisturbed
            assert app.coalescer.stats.dropped_cancelled == 1
            assert app.coalescer.dispatch_log == [
                (("single_source", None, None), (2,)),
            ]
            return responses

        # window longer than the doomed request's deadline: it expires
        # while its bucket is still collecting
        doomed, survivor = harness.serve(
            service, scenario, coalesce_window=0.3
        )
        assert doomed.status == 504
        assert survivor.status == 200
        assert json.loads(survivor.body)["query"] == 2
        assert service.calls == [("single_source_many", (2,))]


class TestLifecycle:
    def test_aclose_closes_the_service_when_asked(self, harness):
        service = harness.StubService()

        async def main():
            app = SimRankHTTPApp(service, ServerConfig(port=0))
            await app.start()
            await app.aclose(close_service=True)

        asyncio.run(main())
        assert service.closed == 1


CFG = {"eps_a": 0.2, "delta": 0.1, "num_walks": 80, "seed": 7,
       "query_seeded": True}


class TestBitExactness:
    """Coalesced HTTP answers must equal a sequential oracle, byte for byte."""

    def test_coalesced_responses_match_sequential_oracle(self, harness, tiny_wiki):
        service = SimRankService(
            tiny_wiki, methods=["probesim-batched"],
            configs={"probesim-batched": CFG},
        )
        # duplicates included: dedup must not perturb anyone's answer
        queries = [3, 11, 3, 25, 40, 57, 11, 64, 81, 99]

        async def scenario(app):
            async def one(kind, query):
                async with harness.Client(app.port) as client:
                    if kind == "topk":
                        return await client.request(
                            "POST", "/topk", {"query": query, "k": 5}
                        )
                    return await client.request(
                        "POST", "/single_source", {"query": query}
                    )

            responses = await asyncio.gather(*(
                [one("single_source", q) for q in queries]
                + [one("topk", q) for q in queries]
            ))
            # real coalescing happened (the whole point of the tier)
            assert app.coalescer.stats.batches < app.coalescer.stats.requests
            assert app.coalescer.stats.dedup_saved > 0
            return responses

        responses = harness.serve(service, scenario, coalesce_window=0.25)
        service.close()

        oracle = SimRankService(
            tiny_wiki, methods=["probesim-batched"],
            configs={"probesim-batched": CFG},
        )
        single, topk = responses[:len(queries)], responses[len(queries):]
        for query, response in zip(queries, single):
            assert response.status == 200
            assert response.body == serialize_result(
                oracle.single_source(query), 10
            )
        for query, response in zip(queries, topk):
            assert response.status == 200
            assert response.body == serialize_topk(oracle.topk(query, 5))


class TestShardedService:
    """The front door speaks the same protocol over the sharded router."""

    def test_sharded_service_behind_the_app(self, harness, tiny_wiki):
        from repro.parallel.sharded import ShardedSimRankService

        service = ShardedSimRankService(
            tiny_wiki.copy(), methods=("probesim-batched",),
            configs={"probesim-batched": {
                "eps_a": 0.3, "num_walks": 40, "seed": 11,
            }},
            shards=2, workers=1, executor="sequential", cache_size=8,
        )

        async def scenario(app):
            async with harness.Client(app.port) as client:
                single = await client.request(
                    "POST", "/single_source", {"query": 3}
                )
                update = await client.request(
                    "POST", "/apply_edges", {"added": [[0, 9]]}
                )
                health = await client.request("GET", "/healthz")
                metrics = await client.request("GET", "/metrics")
                return single, update, health, metrics

        single, update, health, metrics = harness.serve(service, scenario)
        service.close()
        assert single.status == 200
        assert update.status == 200
        payload = json.loads(health.body)
        assert payload["status"] == "ok"
        # the router's epoch (summed shard epochs) is a plain int for /healthz
        assert isinstance(payload["epoch"], int)
        assert payload["epoch"] >= 1
        text = metrics.body.decode()
        assert "repro_cache_hits" in text  # merged shard cache snapshot
        assert "repro_updates 1" in text  # the router's logical update count
        assert "repro_syncs 1" in text
