"""Unit tests for the micro-batching coalescer (pure asyncio, no sockets)."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.server.coalesce import Coalescer


class Recorder:
    """A dispatch target that records batches and answers ``query * 10``."""

    def __init__(self, delay: float = 0.0, fail: Exception | None = None,
                 short: bool = False):
        self.batches: list[tuple[object, tuple[int, ...]]] = []
        self.delay = delay
        self.fail = fail
        self.short = short

    async def __call__(self, key, queries):
        self.batches.append((key, tuple(queries)))
        if self.delay:
            await asyncio.sleep(self.delay)
        if self.fail is not None:
            raise self.fail
        results = [query * 10 for query in queries]
        return results[:-1] if self.short else results


class TestCoalescing:
    def test_single_submit_dispatches_after_window(self):
        async def main():
            recorder = Recorder()
            coalescer = Coalescer(recorder, window=0.001)
            result = await coalescer.submit("key", 7)
            assert result == 70
            assert recorder.batches == [("key", (7,))]
            assert coalescer.dispatch_log == [("key", (7,))]
            assert coalescer.stats.requests == 1
            assert coalescer.stats.batches == 1

        asyncio.run(main())

    def test_concurrent_submits_share_one_batch(self):
        async def main():
            recorder = Recorder()
            coalescer = Coalescer(recorder, window=0.02)
            results = await asyncio.gather(
                coalescer.submit("key", 1),
                coalescer.submit("key", 2),
                coalescer.submit("key", 3),
            )
            assert results == [10, 20, 30]
            assert recorder.batches == [("key", (1, 2, 3))]
            assert coalescer.stats.max_batch == 3

        asyncio.run(main())

    def test_duplicate_queries_share_one_slot(self):
        async def main():
            recorder = Recorder()
            coalescer = Coalescer(recorder, window=0.02)
            results = await asyncio.gather(
                coalescer.submit("key", 5),
                coalescer.submit("key", 5),
                coalescer.submit("key", 6),
            )
            assert results == [50, 50, 60]
            # the duplicate never cost a batch slot
            assert recorder.batches == [("key", (5, 6))]
            assert coalescer.stats.dedup_saved == 1
            assert coalescer.stats.batched_queries == 3

        asyncio.run(main())

    def test_distinct_keys_never_share_a_batch(self):
        async def main():
            recorder = Recorder()
            coalescer = Coalescer(recorder, window=0.02)
            await asyncio.gather(
                coalescer.submit(("topk", None, 5), 1),
                coalescer.submit(("topk", None, 10), 1),
            )
            assert sorted(key for key, _ in recorder.batches) == [
                ("topk", None, 5), ("topk", None, 10),
            ]

        asyncio.run(main())

    def test_backpressure_grows_the_next_batch(self):
        async def main():
            recorder = Recorder(delay=0.1)
            coalescer = Coalescer(recorder, window=0.005)
            first = asyncio.ensure_future(coalescer.submit("key", 1))
            await asyncio.sleep(0.03)  # batch (1,) is now dispatching
            late = [
                asyncio.ensure_future(coalescer.submit("key", q))
                for q in (2, 3, 4)
            ]
            # their window closes while the dispatch is still running, so
            # they coalesce into ONE follow-up batch instead of three
            assert await first == 10
            assert await asyncio.gather(*late) == [20, 30, 40]
            assert recorder.batches == [("key", (1,)), ("key", (2, 3, 4))]

        asyncio.run(main())

    def test_at_most_one_dispatch_in_flight_per_key(self):
        async def main():
            recorder = Recorder(delay=0.05)
            coalescer = Coalescer(recorder, window=0.0)
            waiters = []
            for query in range(4):
                waiters.append(
                    asyncio.ensure_future(coalescer.submit("key", query))
                )
                await asyncio.sleep(0.01)
            assert await asyncio.gather(*waiters) == [0, 10, 20, 30]
            # batches serialized: the 0.01s-spaced arrivals during each
            # 0.05s dispatch merged instead of overlapping it
            assert len(recorder.batches) < 4
            flat = [q for _, qs in recorder.batches for q in qs]
            assert flat == [0, 1, 2, 3]

        asyncio.run(main())

    def test_full_bucket_flushes_before_the_window(self):
        async def main():
            recorder = Recorder()
            # window far longer than the test: only the max_batch early
            # flush can complete these awaits in time
            coalescer = Coalescer(recorder, window=30.0, max_batch=2)
            results = await asyncio.wait_for(
                asyncio.gather(
                    coalescer.submit("key", 1), coalescer.submit("key", 2)
                ),
                timeout=5.0,
            )
            assert results == [10, 20]
            assert recorder.batches == [("key", (1, 2))]

        asyncio.run(main())


class TestCancellation:
    def test_cancelled_waiter_is_dropped_from_the_batch(self):
        async def main():
            recorder = Recorder()
            coalescer = Coalescer(recorder, window=0.05)
            doomed = asyncio.ensure_future(coalescer.submit("key", 1))
            survivor = asyncio.ensure_future(coalescer.submit("key", 2))
            await asyncio.sleep(0)  # let both join the bucket
            doomed.cancel()
            assert await survivor == 20
            # the cancelled query never reached the service...
            assert recorder.batches == [("key", (2,))]
            assert coalescer.stats.dropped_cancelled == 1
            with pytest.raises(asyncio.CancelledError):
                await doomed

        asyncio.run(main())

    def test_fully_cancelled_bucket_never_dispatches(self):
        async def main():
            recorder = Recorder()
            coalescer = Coalescer(recorder, window=0.01)
            waiter = asyncio.ensure_future(coalescer.submit("key", 1))
            await asyncio.sleep(0)
            waiter.cancel()
            await asyncio.sleep(0.05)
            assert recorder.batches == []
            assert coalescer.stats.batches == 0

        asyncio.run(main())


class TestFailures:
    def test_dispatch_exception_reaches_every_waiter(self):
        async def main():
            recorder = Recorder(fail=ValueError("engine exploded"))
            coalescer = Coalescer(recorder, window=0.01)
            results = await asyncio.gather(
                coalescer.submit("key", 1),
                coalescer.submit("key", 2),
                return_exceptions=True,
            )
            assert all(isinstance(r, ValueError) for r in results)

        asyncio.run(main())

    def test_result_count_mismatch_is_surfaced(self):
        async def main():
            recorder = Recorder(short=True)
            coalescer = Coalescer(recorder, window=0.01)
            results = await asyncio.gather(
                coalescer.submit("key", 1),
                coalescer.submit("key", 2),
                return_exceptions=True,
            )
            assert all(isinstance(r, ConfigurationError) for r in results)
            assert "2 queries" in str(results[0])

        asyncio.run(main())


class TestFlush:
    def test_flush_drains_parked_buckets(self):
        async def main():
            recorder = Recorder()
            coalescer = Coalescer(recorder, window=30.0)
            waiter = asyncio.ensure_future(coalescer.submit("key", 4))
            await asyncio.sleep(0)
            await coalescer.flush()  # shutdown path: no timer wait
            assert await asyncio.wait_for(waiter, timeout=5.0) == 40

        asyncio.run(main())

    def test_flush_drains_bucket_parked_behind_in_flight_dispatch(self):
        """Regression: with every open bucket parked behind its key's
        running dispatch, flush() must await the dispatch and then flush
        the parked bucket exactly once — not spin re-marking it ready."""

        async def main():
            recorder = Recorder(delay=0.05)
            coalescer = Coalescer(recorder, window=0.0)
            first = asyncio.ensure_future(coalescer.submit("key", 1))
            await asyncio.sleep(0.01)  # (1,) is now dispatching
            parked = asyncio.ensure_future(coalescer.submit("key", 2))
            await asyncio.sleep(0)  # bucket (2,) parked behind the dispatch
            assert "key" in coalescer._in_flight
            assert "key" in coalescer._buckets
            await asyncio.wait_for(coalescer.flush(), timeout=5.0)
            # every waiter answered; the parked bucket flushed exactly once
            assert await first == 10
            assert await parked == 20
            assert recorder.batches == [("key", (1,)), ("key", (2,))]
            assert not coalescer._buckets
            assert not coalescer._in_flight
            assert not coalescer._flushes

        asyncio.run(main())

    def test_flush_drains_parked_buckets_across_keys(self):
        async def main():
            recorder = Recorder(delay=0.03)
            coalescer = Coalescer(recorder, window=0.0)
            waiters = [asyncio.ensure_future(coalescer.submit(k, q))
                       for q, k in enumerate(("a", "b"))]
            await asyncio.sleep(0.01)  # both keys dispatching
            waiters += [asyncio.ensure_future(coalescer.submit(k, q + 10))
                        for q, k in enumerate(("a", "b"))]
            await asyncio.sleep(0)  # both follow-ups parked
            await asyncio.wait_for(coalescer.flush(), timeout=5.0)
            assert await asyncio.gather(*waiters) == [0, 10, 100, 110]
            assert not coalescer._buckets and not coalescer._in_flight

        asyncio.run(main())


class TestValidation:
    def test_negative_window_is_rejected(self):
        with pytest.raises(ConfigurationError, match="window"):
            Coalescer(Recorder(), window=-0.1)

    def test_non_positive_max_batch_is_rejected(self):
        with pytest.raises(ConfigurationError, match="max_batch"):
            Coalescer(Recorder(), max_batch=0)
