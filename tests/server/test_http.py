"""Unit tests for the minimal HTTP/1.1 wire layer (no sockets needed:
a StreamReader is fed the raw bytes directly)."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.server.http import (
    MAX_HEADER_BYTES,
    HTTPRequest,
    read_request,
    read_response,
    render_response,
)


def _feed(data: bytes, eof: bool = True) -> "asyncio.StreamReader":
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def _parse(data: bytes, **kwargs):
    async def main():
        return await read_request(_feed(data), **kwargs)

    return asyncio.run(main())


def _parse_error(data: bytes, **kwargs) -> str:
    with pytest.raises(ProtocolError) as exc_info:
        _parse(data, **kwargs)
    return str(exc_info.value)


class TestReadRequest:
    def test_post_with_body(self):
        body = b'{"query": 3}'
        raw = (
            b"POST /single_source HTTP/1.1\r\n"
            b"Host: x\r\nContent-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n" % len(body)
        ) + body
        request = _parse(raw)
        assert request.method == "POST"
        assert request.path == "/single_source"
        assert request.version == "HTTP/1.1"
        assert request.body == body
        assert request.json() == {"query": 3}

    def test_headers_are_lower_cased_and_stripped(self):
        request = _parse(b"GET /healthz HTTP/1.1\r\nX-Thing:  padded \r\n\r\n")
        assert request.headers["x-thing"] == "padded"

    def test_clean_eof_between_requests_returns_none(self):
        assert _parse(b"") is None

    def test_truncated_head_is_a_protocol_error(self):
        assert "mid-request" in _parse_error(b"POST /x HTTP/1.1\r\nHost")

    def test_truncated_body_is_a_protocol_error(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
        assert "mid-body" in _parse_error(raw)

    def test_malformed_request_line(self):
        assert "request line" in _parse_error(b"POST /x\r\n\r\n")

    def test_unsupported_version(self):
        assert "version" in _parse_error(b"GET /x HTTP/2\r\n\r\n")

    def test_malformed_header_line(self):
        assert "header line" in _parse_error(b"GET /x HTTP/1.1\r\nnocolon\r\n\r\n")

    def test_header_block_cap(self):
        filler = b"X-Pad: " + b"a" * MAX_HEADER_BYTES + b"\r\n"
        message = _parse_error(b"GET /x HTTP/1.1\r\n" + filler + b"\r\n")
        assert "header block exceeds" in message

    def test_body_cap_mentions_exceeds_cap(self):
        # the app keys its 413 mapping off this message
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"b" * 100
        assert "exceeds cap" in _parse_error(raw, max_body=10)

    def test_invalid_content_length(self):
        assert "Content-Length" in _parse_error(
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
        )
        assert "Content-Length" in _parse_error(
            b"POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n"
        )

    def test_chunked_transfer_is_rejected(self):
        raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        assert "chunked" in _parse_error(raw)


class TestKeepAlive:
    def test_http11_defaults_to_keep_alive(self):
        assert HTTPRequest("GET", "/", "HTTP/1.1").keep_alive

    def test_http11_connection_close_opts_out(self):
        request = HTTPRequest("GET", "/", "HTTP/1.1", {"connection": "Close"})
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        assert not HTTPRequest("GET", "/", "HTTP/1.0").keep_alive

    def test_http10_can_opt_in(self):
        request = HTTPRequest("GET", "/", "HTTP/1.0", {"connection": "keep-alive"})
        assert request.keep_alive


class TestRequestJson:
    def test_empty_body_decodes_to_empty_object(self):
        assert HTTPRequest("POST", "/", "HTTP/1.1").json() == {}

    def test_invalid_json_raises_protocol_error(self):
        request = HTTPRequest("POST", "/", "HTTP/1.1", body=b"{nope")
        with pytest.raises(ProtocolError, match="not valid JSON"):
            request.json()


class TestRenderAndReadResponse:
    def _roundtrip(self, payload: bytes):
        async def main():
            return await read_response(_feed(payload))

        return asyncio.run(main())

    def test_roundtrip(self):
        payload = render_response(
            200, b'{"ok":true}', extra_headers=(("Retry-After", "1"),)
        )
        response = self._roundtrip(payload)
        assert response.status == 200
        assert response.reason == "OK"
        assert response.headers["retry-after"] == "1"
        assert response.headers["content-type"] == "application/json"
        assert response.body == b'{"ok":true}'

    def test_connection_header_tracks_keep_alive(self):
        assert b"Connection: keep-alive" in render_response(200, b"")
        assert b"Connection: close" in render_response(200, b"", keep_alive=False)

    def test_unknown_status_gets_unknown_reason(self):
        assert b"HTTP/1.1 599 Unknown" in render_response(599, b"")

    def test_clean_eof_returns_none(self):
        assert self._roundtrip(b"") is None

    def test_malformed_status_line(self):
        with pytest.raises(ProtocolError, match="status"):
            self._roundtrip(b"NOPE\r\n\r\n")
