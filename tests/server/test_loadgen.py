"""Tests for the open-loop load generator (trace replay + measurement)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ConfigurationError
from repro.server import (
    LoadReport,
    requests_from_trace,
    run_load,
    serialize_result,
)
from repro.workloads.generator import generate_workload


class TestRequestsFromTrace:
    def test_single_source_requests_replay_the_query_stream(self, tiny_wiki):
        trace = generate_workload(
            tiny_wiki, num_ops=20, read_fraction=1.0, seed=5
        )
        requests = requests_from_trace(trace, limit=5, method="probesim")
        assert len(requests) == len(trace.query_nodes())
        for (path, body), query in zip(requests, trace.query_nodes()):
            assert path == "/v1/single_source"
            assert json.loads(body) == {
                "query": int(query), "limit": 5, "method": "probesim",
            }

    def test_topk_requests_carry_k(self, tiny_wiki):
        trace = generate_workload(
            tiny_wiki, num_ops=10, read_fraction=1.0, seed=5
        )
        requests = requests_from_trace(trace, kind="topk", k=7)
        path, body = requests[0]
        assert path == "/v1/topk"
        assert json.loads(body)["k"] == 7

    def test_unknown_kind_is_rejected(self, tiny_wiki):
        trace = generate_workload(
            tiny_wiki, num_ops=5, read_fraction=1.0, seed=5
        )
        with pytest.raises(ConfigurationError, match="kind"):
            requests_from_trace(trace, kind="nope")


class TestLoadReport:
    def test_empty_report_percentiles_are_zero(self):
        report = LoadReport(offered_rate=10.0, num_requests=0)
        assert report.percentile(99) == 0.0
        assert report.achieved_qps == 0.0
        assert report.shed_rate == 0.0

    def test_derived_rates(self):
        report = LoadReport(
            offered_rate=10.0, num_requests=10, completed=10,
            status_counts={200: 6, 503: 3, 504: 1},
            wall_seconds=2.0,
        )
        assert report.achieved_qps == 3.0  # only 200s count
        assert report.shed_rate == 0.3
        assert report.timeout_count == 1

    def test_row_and_dict_surfaces(self):
        report = LoadReport(
            offered_rate=10.0, num_requests=2, completed=2,
            status_counts={200: 2}, latencies=[0.01, 0.03],
            wall_seconds=1.0, connections=2,
        )
        row = report.as_row()
        assert set(row) == {
            "rate", "requests", "qps", "p50_ms", "p95_ms", "p99_ms",
            "shed_rate", "timeouts", "errors",
        }
        assert row["p50_ms"] == pytest.approx(20.0)
        payload = report.to_dict()
        assert payload["status_counts"] == {"200": 2}
        assert payload["achieved_qps"] == 2.0


class TestRunLoad:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="rate"):
            asyncio.run(run_load("h", 1, [("/x", b"")], rate=0))
        with pytest.raises(ConfigurationError, match="no requests"):
            asyncio.run(run_load("h", 1, [], rate=10))

    def test_replay_measures_and_collects_bodies(self, harness, tiny_wiki):
        service = harness.StubService()
        trace = generate_workload(
            tiny_wiki, num_ops=20, read_fraction=1.0, seed=9
        )
        requests = requests_from_trace(trace, limit=4)

        async def scenario(app):
            return await run_load(
                "127.0.0.1", app.port, requests, rate=500.0,
                collect_bodies=True,
            )

        report = harness.serve(service, scenario)
        assert report.num_requests == len(requests)
        assert report.completed == len(requests)
        assert report.errors == 0
        assert report.status_counts == {200: len(requests)}
        assert report.wall_seconds > 0
        assert report.achieved_qps > 0
        assert report.connections >= 1
        assert len(report.latencies) == len(requests)
        # bodies arrive in request order and match the stub's answers
        for (path, _), body, query in zip(
            requests, report.bodies, trace.query_nodes()
        ):
            assert body == serialize_result(harness.FakeResult(int(query)), 4)

    def test_sheds_are_measured_not_errors(self, harness):
        # one slow lane slot: the first request occupies it for 300ms while
        # the open-loop schedule fires the rest within ~40ms — they shed
        service = harness.StubService(delay=0.3)
        requests = [("/single_source", b'{"query": 1}')] * 5

        async def scenario(app):
            return await run_load("127.0.0.1", app.port, requests, rate=100.0)

        report = harness.serve(
            service, scenario, coalesce=False, admission_capacity=1
        )
        assert report.errors == 0
        assert report.status_counts.get(200) == 1
        assert report.status_counts.get(503) == 4
        assert report.shed_rate == pytest.approx(0.8)

    def test_connection_refused_counts_as_error(self):
        async def main():
            # a port nothing listens on: bind-and-close to find a free one
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            return await run_load(
                "127.0.0.1", port, [("/x", b"{}")], rate=100.0, timeout=2.0
            )

        report = asyncio.run(main())
        assert report.errors == 1
        assert report.completed == 0
