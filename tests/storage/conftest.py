"""Shared fixtures for the persistent storage tier.

Besides the usual graph fixtures, every test in this package runs under
three autouse leak audits, so storage hygiene is asserted everywhere
rather than in dedicated tests only:

- **tmp-file audit** — no ``.tmp-`` / spill / scratch debris may survive a
  test inside its ``tmp_path`` (atomic writers must rename or unlink);
- **fd audit** — no file descriptor open on anything under ``tmp_path``
  may outlive the test (``/proc/self/fd``, Linux only);
- **mmap audit** — no mapping of a file under ``tmp_path`` may outlive
  the test (``/proc/self/maps``, Linux only) — a ``MappedSnapshot`` left
  open, even through the BufferError-tolerant close path, fails here.
"""

from __future__ import annotations

import gc
import os
import sys
from pathlib import Path

import pytest

from repro.graph import DiGraph, write_edge_list

IS_LINUX = sys.platform.startswith("linux")


def open_fds_under(root: Path) -> list[str]:
    """Paths under ``root`` with an open file descriptor in this process."""
    found = []
    for fd in Path("/proc/self/fd").iterdir():
        try:
            target = os.readlink(fd)
        except OSError:  # the fd of the iterdir itself, already gone
            continue
        if target.startswith(str(root)):
            found.append(target)
    return found


def mapped_files_under(root: Path) -> list[str]:
    """Files under ``root`` currently memory-mapped into this process."""
    found = set()
    with open("/proc/self/maps", encoding="utf-8") as handle:
        for line in handle:
            path = line.split(maxsplit=5)[-1].strip() if len(line.split()) >= 6 else ""
            if path.startswith(str(root)):
                found.add(path)
    return sorted(found)


@pytest.fixture(autouse=True)
def storage_leak_audit(tmp_path):
    """Fail any test that leaks tmp debris, fds, or mmaps under tmp_path."""
    yield
    gc.collect()  # drop BufferError-pinned mappings before auditing
    debris = sorted(
        p.relative_to(tmp_path).as_posix()
        for p in tmp_path.rglob("*")
        if ".tmp-" in p.name or p.name.startswith(".ingest-")
    )
    assert debris == [], f"temporary files leaked: {debris}"
    if IS_LINUX:
        assert open_fds_under(tmp_path) == [], "file descriptors leaked"
        assert mapped_files_under(tmp_path) == [], "mmap mappings leaked"


@pytest.fixture()
def small_graph() -> DiGraph:
    """A hand-sized graph with branching, a cycle, and an isolated sink."""
    return DiGraph.from_edges(
        [(0, 1), (1, 0), (2, 0), (2, 1), (3, 2), (3, 0), (4, 3), (1, 4)],
        num_nodes=6,
    )


@pytest.fixture()
def messy_edge_file(tmp_path) -> Path:
    """A SNAP-style edge list with comments, duplicates, and self-loops."""
    path = tmp_path / "messy.txt"
    lines = [
        "# a comment header",
        "10 20",
        "20 10",
        "",
        "10 20",  # duplicate
        "7 7",    # self-loop (dropped, but 7 claims a dense label)
        "30 10",
        "# trailing comment",
        "30 20",
        "20 30",
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


@pytest.fixture()
def wiki_edge_file(tmp_path, tiny_wiki) -> Path:
    """The 200-node stand-in dataset as an on-disk edge list."""
    path = tmp_path / "wiki.txt"
    write_edge_list(tiny_wiki, path)
    return path
