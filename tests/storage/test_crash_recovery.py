"""Fault injection: every crash point in the log/checkpoint cycle recovers.

The contract under test: after a kill at *any* byte of the persistence
path, recovery lands on a burst boundary — the state right before or right
after an acknowledged burst, never a torn intermediate — and re-running
recovery on the same wreckage always yields the same graph.
"""

from __future__ import annotations

import pytest

from repro.graph import CSRGraph
from repro.graph.dynamic import EdgeUpdate, apply_update
from repro.storage import (
    PersistentGraphStore,
    WriteAheadLog,
    recover,
    write_snapshot,
)
from repro.storage.store import snapshot_path, wal_path
from repro.storage.wal import HEADER_BYTES, RECORD_BYTES

BURST = (
    EdgeUpdate("insert", 5, 2),
    EdgeUpdate("insert", 0, 3),
    EdgeUpdate("delete", 2, 1),
    EdgeUpdate("insert", 4, 1),
)


def oracle_digest(graph, updates) -> str:
    """Digest after applying ``updates`` sequentially — the ground truth."""
    out = graph.copy()
    for update in updates:
        apply_update(out, update)
    return CSRGraph.from_digraph(out).digest()


@pytest.fixture()
def logged_store(small_graph, tmp_path):
    """A store whose generation-1 WAL holds the full burst."""
    root = tmp_path / "store"
    with PersistentGraphStore.create(root, small_graph) as store:
        store.log(BURST)
    return root


class TestTornWalRecovery:
    def test_every_byte_offset_recovers_to_a_burst_boundary(
        self, small_graph, logged_store
    ):
        """Kill the writer at every byte of the log: the recovered graph is
        always exactly the prefix of complete frames — the state just
        before the torn record, never a blend of partial updates."""
        log = wal_path(logged_store, 1)
        full = log.read_bytes()
        expected = [
            oracle_digest(small_graph, BURST[:kept])
            for kept in range(len(BURST) + 1)
        ]
        for cut in range(HEADER_BYTES, len(full) + 1):
            log.write_bytes(full[:cut])
            kept = (cut - HEADER_BYTES) // RECORD_BYTES
            with recover(logged_store) as state:
                assert len(state.tail) == kept, f"cut at byte {cut}"
                assert state.digest() == expected[kept], f"cut at byte {cut}"
        log.write_bytes(full)

    def test_recovery_is_idempotent_on_wreckage(self, logged_store):
        log = wal_path(logged_store, 1)
        log.write_bytes(log.read_bytes()[:-9])  # tear the last frame
        digests = []
        for _ in range(3):
            with recover(logged_store) as state:
                digests.append(state.digest())
                assert state.torn_bytes == RECORD_BYTES - 9
        assert len(set(digests)) == 1

    def test_open_repairs_then_resumes_identically(
        self, small_graph, logged_store
    ):
        """A torn store, once reopened, continues exactly where the last
        acknowledged burst left off — the torn record is as if never sent."""
        log = wal_path(logged_store, 1)
        log.write_bytes(log.read_bytes()[:-1])  # last frame now torn
        resumed = (EdgeUpdate("insert", 1, 3),)
        with PersistentGraphStore.open(logged_store) as store:
            assert store.wal_records == len(BURST) - 1
            store.log(resumed)
        with recover(logged_store) as state:
            assert state.digest() == oracle_digest(
                small_graph, BURST[:-1] + resumed
            )


class TestMidCheckpointCrashes:
    """Splice the store into each intermediate state of a checkpoint.

    ``checkpoint`` orders its steps: write snapshot g+1 → create WAL g+1 →
    delete WAL g → delete snapshot g.  A kill between any two steps must
    recover the same logical graph (the folded burst), from whichever
    generation survives.
    """

    def folded(self, small_graph):
        out = small_graph.copy()
        for update in BURST:
            apply_update(out, update)
        return out

    def test_crash_before_snapshot_rename(self, small_graph, logged_store):
        """The tmp snapshot never renamed: invisible to recovery."""
        tmp = logged_store / ".snapshot-000002.csr.tmp-12345"
        tmp.write_bytes(b"half a snapshot")
        with recover(logged_store) as state:
            assert state.generation == 1
            assert state.tail == BURST
        with PersistentGraphStore.open(logged_store) as store:
            assert store.generation == 1
        assert not tmp.exists()  # open() swept the debris

    def test_crash_after_snapshot_before_new_wal(self, small_graph, logged_store):
        folded = self.folded(small_graph)
        write_snapshot(folded, snapshot_path(logged_store, 2))
        with recover(logged_store) as state:
            assert state.generation == 2
            assert state.tail == ()  # the snapshot already folds the log in
            assert state.digest() == oracle_digest(small_graph, BURST)

    def test_crash_after_new_wal_before_deletes(self, small_graph, logged_store):
        folded = self.folded(small_graph)
        write_snapshot(folded, snapshot_path(logged_store, 2))
        WriteAheadLog.create(wal_path(logged_store, 2), 2).close()
        with recover(logged_store) as state:
            assert state.generation == 2
            assert state.digest() == oracle_digest(small_graph, BURST)

    def test_crash_after_old_wal_deleted(self, small_graph, logged_store):
        folded = self.folded(small_graph)
        write_snapshot(folded, snapshot_path(logged_store, 2))
        WriteAheadLog.create(wal_path(logged_store, 2), 2).close()
        wal_path(logged_store, 1).unlink()
        with recover(logged_store) as state:
            assert state.generation == 2
            assert state.digest() == oracle_digest(small_graph, BURST)

    def test_open_after_mid_checkpoint_crash_sweeps_old_generation(
        self, small_graph, logged_store
    ):
        folded = self.folded(small_graph)
        write_snapshot(folded, snapshot_path(logged_store, 2))
        WriteAheadLog.create(wal_path(logged_store, 2), 2).close()
        with PersistentGraphStore.open(logged_store) as store:
            assert store.generation == 2
        survivors = sorted(p.name for p in logged_store.iterdir())
        assert survivors == ["snapshot-000002.csr", "wal-000002.log"]

    def test_torn_new_snapshot_falls_back_to_old_generation(
        self, small_graph, logged_store
    ):
        """Snapshot g+1 renamed but torn on disk (e.g. silent corruption):
        recovery verifies the payload and falls back to generation g plus
        its full log — the exact same logical state."""
        folded = self.folded(small_graph)
        write_snapshot(folded, snapshot_path(logged_store, 2))
        raw = snapshot_path(logged_store, 2).read_bytes()
        snapshot_path(logged_store, 2).write_bytes(raw[: len(raw) // 2])
        with recover(logged_store) as state:
            assert state.generation == 1
            assert state.tail == BURST
            assert state.digest() == oracle_digest(small_graph, BURST)


class TestCombinedFaults:
    def test_torn_snapshot_and_torn_wal_together(self, small_graph, logged_store):
        """Both artifacts damaged at once: fall back a generation *and*
        drop the torn frame — still a burst boundary."""
        folded_partial = small_graph.copy()
        for update in BURST:
            apply_update(folded_partial, update)
        write_snapshot(folded_partial, snapshot_path(logged_store, 2))
        raw = snapshot_path(logged_store, 2).read_bytes()
        snapshot_path(logged_store, 2).write_bytes(raw[:-16])
        log = wal_path(logged_store, 1)
        log.write_bytes(log.read_bytes()[:-5])
        with recover(logged_store) as state:
            assert state.generation == 1
            assert len(state.tail) == len(BURST) - 1
            assert state.digest() == oracle_digest(small_graph, BURST[:-1])
