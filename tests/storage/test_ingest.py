"""Out-of-core ingestion: bit-identity with the in-memory path, bounded chunks."""

from __future__ import annotations

import gzip

import pytest

from repro.errors import DatasetError
from repro.graph import CSRGraph, read_edge_list
from repro.storage import attach_snapshot, ingest_edge_list, write_snapshot


def reference_bytes(source, out_dir, **read_kwargs) -> bytes:
    """The oracle: write_snapshot(read_edge_list(source)) file bytes."""
    path = out_dir / "reference.csr"
    write_snapshot(read_edge_list(source, **read_kwargs), path)
    return path.read_bytes()


class TestBitIdentity:
    def test_matches_in_memory_path(self, messy_edge_file, tmp_path):
        out = tmp_path / "ingested.csr"
        stats = ingest_edge_list(messy_edge_file, out)
        assert out.read_bytes() == reference_bytes(messy_edge_file, tmp_path)
        header = stats.header
        assert header.digest == stats.digest

    @pytest.mark.parametrize("chunk_edges", [1, 2, 3, 7, 1 << 18])
    def test_chunk_size_never_changes_output(
        self, messy_edge_file, tmp_path, chunk_edges
    ):
        out = tmp_path / f"chunk{chunk_edges}.csr"
        ingest_edge_list(messy_edge_file, out, chunk_edges=chunk_edges)
        assert out.read_bytes() == reference_bytes(messy_edge_file, tmp_path)

    def test_gzip_transparency(self, messy_edge_file, tmp_path):
        gz = tmp_path / "messy.txt.gz"
        gz.write_bytes(gzip.compress(messy_edge_file.read_bytes()))
        out = tmp_path / "fromgz.csr"
        ingest_edge_list(gz, out)
        assert out.read_bytes() == reference_bytes(messy_edge_file, tmp_path)

    def test_larger_graph(self, wiki_edge_file, tmp_path):
        out = tmp_path / "wiki.csr"
        stats = ingest_edge_list(wiki_edge_file, out, chunk_edges=100)
        assert out.read_bytes() == reference_bytes(wiki_edge_file, tmp_path)
        assert stats.nodes == 200

    def test_no_relabel_verbatim_ids(self, tmp_path):
        source = tmp_path / "dense.txt"
        source.write_text("0 1\n1 2\n2 0\n4 0\n", encoding="utf-8")
        out = tmp_path / "dense.csr"
        ingest_edge_list(source, out, relabel=False)
        assert out.read_bytes() == reference_bytes(
            source, tmp_path, relabel=False
        )
        with attach_snapshot(out) as mapped:
            assert mapped.header.num_nodes == 5  # 0..4, id 3 isolated

    def test_attached_graph_equals_read_edge_list(self, messy_edge_file, tmp_path):
        out = tmp_path / "messy.csr"
        ingest_edge_list(messy_edge_file, out)
        expected = CSRGraph.from_digraph(read_edge_list(messy_edge_file))
        with attach_snapshot(out, verify=True) as mapped:
            assert mapped.graph().digest() == expected.digest()


class TestStats:
    def test_counts(self, messy_edge_file, tmp_path):
        stats = ingest_edge_list(messy_edge_file, tmp_path / "m.csr")
        assert stats.lines == 7          # non-comment, non-blank lines
        assert stats.self_loops == 1
        assert stats.duplicates == 1
        assert stats.edges == 5
        # ids seen: 10, 20, 7 (self-loop still claims a label), 30
        assert stats.nodes == 4

    def test_spill_accounting(self, messy_edge_file, tmp_path):
        stats = ingest_edge_list(messy_edge_file, tmp_path / "m.csr",
                                 chunk_edges=2)
        assert stats.chunk_edges == 2
        assert stats.spill_bytes == 6 * 16  # kept (pre-dedup) edges, 16 B each


class TestErrors:
    def test_missing_input(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            ingest_edge_list(tmp_path / "nope.txt", tmp_path / "o.csr")

    def test_bad_chunk_size(self, messy_edge_file, tmp_path):
        with pytest.raises(DatasetError, match="chunk_edges"):
            ingest_edge_list(messy_edge_file, tmp_path / "o.csr", chunk_edges=0)

    def test_malformed_line(self, tmp_path):
        source = tmp_path / "bad.txt"
        source.write_text("1 2\nonly_one_field\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="expected 'source target'"):
            ingest_edge_list(source, tmp_path / "o.csr")

    def test_non_integer_id(self, tmp_path):
        source = tmp_path / "bad.txt"
        source.write_text("1 2\na b\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="non-integer"):
            ingest_edge_list(source, tmp_path / "o.csr")

    def test_self_loop_rejected_when_not_dropping(self, tmp_path):
        source = tmp_path / "loop.txt"
        source.write_text("1 1\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="self-loop"):
            ingest_edge_list(source, tmp_path / "o.csr", drop_self_loops=False)

    def test_duplicates_rejected_when_not_deduplicating(self, tmp_path):
        source = tmp_path / "dup.txt"
        source.write_text("1 2\n1 2\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="duplicate"):
            ingest_edge_list(source, tmp_path / "o.csr", deduplicate=False)

    def test_negative_id_without_relabel(self, tmp_path):
        source = tmp_path / "neg.txt"
        source.write_text("-1 2\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="negative"):
            ingest_edge_list(source, tmp_path / "o.csr", relabel=False)

    def test_failed_ingest_leaves_no_output(self, tmp_path):
        source = tmp_path / "bad.txt"
        source.write_text("1 2\nbroken\n", encoding="utf-8")
        out = tmp_path / "o.csr"
        with pytest.raises(DatasetError):
            ingest_edge_list(source, out)
        assert not out.exists()
        # spill/scratch/tmp cleanup is asserted by the autouse leak audit
