"""End-to-end restart drill: SIGKILL a writer mid-burst, recover, resume.

A child process opens the store, durably logs half the update stream, then
dies by SIGKILL with a partial frame on disk — the closest a test can get
to yanking the power cord.  The parent recovers, replays the rest of the
stream, and must land **bit-identical** to a run that never crashed: same
CSR digest, same served scores, unsharded and P=2 sharded alike.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import apply_update
from repro.parallel.pool import ParallelSimRankService
from repro.parallel.sharded import ShardedSimRankService, write_shard_snapshots
from repro.storage import PersistentGraphStore, recover
from repro.storage.store import wal_path

METHOD = "probesim-batched"
CONFIG = {METHOD: {"eps_a": 0.3, "num_walks": 40, "seed": 11}}
QUERIES = [3, 1, 4, 15, 92, 65]

SRC_ROOT = str(Path(repro.__file__).parents[1])

# Opens the store, logs the first `bursts` bursts (each durably fsynced —
# acknowledged history), scribbles a partial frame, and dies without any
# cleanup.  Arguments: store_dir updates_file bursts burst_size
CHILD_SCRIPT = """\
import os, signal, sys
from repro.graph.dynamic import EdgeUpdate
from repro.storage import PersistentGraphStore
from repro.storage.store import wal_path

store_dir, updates_file = sys.argv[1], sys.argv[2]
bursts, burst_size = int(sys.argv[3]), int(sys.argv[4])
updates = []
for line in open(updates_file):
    kind, source, target = line.split()
    updates.append(EdgeUpdate(kind, int(source), int(target)))
store = PersistentGraphStore.open(store_dir)
for i in range(bursts):
    store.log(updates[i * burst_size:(i + 1) * burst_size])
with open(wal_path(store.directory, store.generation), "ab") as handle:
    handle.write(b"\\x07" * 9)  # a torn frame: the append the kill interrupted
    handle.flush()
    os.fsync(handle.fileno())
os.kill(os.getpid(), signal.SIGKILL)
"""


def make_updates(graph, count):
    """A deterministic interleaved insert/delete stream, valid in order."""
    half = count // 2
    deletes = []
    for source in range(graph.num_nodes):
        for target in graph.out_neighbors(source):
            deletes.append(("delete", source, int(target)))
            if len(deletes) == half:
                break
        if len(deletes) == half:
            break
    deleted = {(s, t) for _, s, t in deletes}
    inserts = []
    for source in range(graph.num_nodes):
        for target in range(graph.num_nodes):
            if source == target or (source, target) in deleted:
                continue
            if graph.has_edge(source, target):
                continue
            inserts.append(("insert", source, target))
            if len(inserts) == half:
                break
        if len(inserts) == half:
            break
    stream = []
    for pair in zip(inserts, deletes):
        stream.extend(pair)
    assert len(stream) == count
    return stream


@pytest.fixture()
def drill(tiny_wiki, tmp_path):
    """Store + update stream + oracle base, all sharing one canonical graph."""
    base = CSRGraph.from_digraph(tiny_wiki).to_digraph()  # canonical fixed point
    root = tmp_path / "store"
    PersistentGraphStore.create(root, base).close()
    stream = make_updates(base, 16)
    updates_file = tmp_path / "updates.txt"
    updates_file.write_text(
        "".join(f"{kind} {s} {t}\n" for kind, s, t in stream), encoding="utf-8"
    )
    return root, stream, updates_file, base


def run_child(root, updates_file, bursts, burst_size=2):
    env = dict(os.environ, PYTHONPATH=SRC_ROOT)
    proc = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT,
         str(root), str(updates_file), str(bursts), str(burst_size)],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    return proc


def replay(base, stream):
    out = base.copy()
    for kind, source, target in stream:
        from repro.graph.dynamic import EdgeUpdate

        apply_update(out, EdgeUpdate(kind, source, target))
    return out


class TestRestartBitIdentity:
    BURSTS_BEFORE_KILL = 4  # of 8 total (16 updates, bursts of 2)

    def test_unsharded(self, drill):
        root, stream, updates_file, base = drill
        run_child(root, updates_file, self.BURSTS_BEFORE_KILL)

        logged = self.BURSTS_BEFORE_KILL * 2
        with recover(root) as state:
            assert state.torn_bytes == 9  # the interrupted append, dropped
            assert len(state.tail) == logged
            assert state.digest() == CSRGraph.from_digraph(
                replay(base, stream[:logged])
            ).digest()

        # resume: log the rest of the stream, checkpoint, recover again
        with PersistentGraphStore.open(root) as store:
            assert store.wal_records == logged
            for i in range(self.BURSTS_BEFORE_KILL, len(stream) // 2):
                from repro.graph.dynamic import EdgeUpdate

                store.log([
                    EdgeUpdate(*u) for u in stream[i * 2:(i + 1) * 2]
                ])
            recovered = store.materialize()
            store.checkpoint(recovered)

        uninterrupted = replay(base, stream)
        assert (
            CSRGraph.from_digraph(recovered).digest()
            == CSRGraph.from_digraph(uninterrupted).digest()
        )
        with recover(root) as state:
            assert state.generation == 2
            assert state.tail == ()
            assert state.digest() == CSRGraph.from_digraph(uninterrupted).digest()

        # served scores are bit-identical to the run that never crashed
        with ParallelSimRankService(
            recovered, methods=(METHOD,), configs=CONFIG,
            workers=1, executor="sequential",
        ) as survived, ParallelSimRankService(
            uninterrupted, methods=(METHOD,), configs=CONFIG,
            workers=1, executor="sequential",
        ) as oracle:
            for query in QUERIES:
                np.testing.assert_array_equal(
                    survived.single_source(query).scores,
                    oracle.single_source(query).scores,
                )

    def test_sharded_p2(self, drill, tmp_path):
        root, stream, updates_file, base = drill
        run_child(root, updates_file, self.BURSTS_BEFORE_KILL)

        with PersistentGraphStore.open(root) as store:
            from repro.graph.dynamic import EdgeUpdate

            for i in range(self.BURSTS_BEFORE_KILL, len(stream) // 2):
                store.log([
                    EdgeUpdate(*u) for u in stream[i * 2:(i + 1) * 2]
                ])
            recovered = store.materialize()
        uninterrupted = replay(base, stream)

        # the shard cut of the recovered graph is byte-identical per shard
        survived_dir = tmp_path / "shards-survived"
        oracle_dir = tmp_path / "shards-oracle"
        write_shard_snapshots(recovered, survived_dir, shards=2)
        write_shard_snapshots(uninterrupted, oracle_dir, shards=2)
        for name in sorted(p.name for p in oracle_dir.iterdir()):
            assert (survived_dir / name).read_bytes() == (
                oracle_dir / name
            ).read_bytes(), name

        # and a service warm-attached to it serves the oracle's scores
        with ShardedSimRankService(
            methods=(METHOD,), configs=CONFIG, snapshot=survived_dir,
            workers=1, executor="sequential",
        ) as survived, ShardedSimRankService(
            uninterrupted, methods=(METHOD,), configs=CONFIG, shards=2,
            workers=1, executor="sequential",
        ) as oracle:
            for query in QUERIES:
                np.testing.assert_array_equal(
                    survived.single_source(query).scores,
                    oracle.single_source(query).scores,
                )
