"""The storage tier wired into the serving layer: durable, still bit-exact.

Three integration contracts:

- a snapshot-backed service is bit-identical to one built from the same
  graph in memory (and sequential == process over the mmap path);
- a store-backed service write-aheads every acknowledged burst, so killing
  it at any point recovers a burst boundary; rebuild syncs checkpoint;
- the workload driver replays identically from a snapshot file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, EvaluationError
from repro.storage import SnapshotError
from repro.graph.csr import CSRGraph, as_csr
from repro.parallel.pool import ParallelSimRankService
from repro.parallel.sharded import (
    ShardedSimRankService,
    load_shard_partition,
    write_shard_snapshots,
)
from repro.storage import PersistentGraphStore, recover, write_snapshot
from repro.workloads import generate_workload, run_workload

METHOD = "probesim-batched"
CONFIG = {METHOD: {"eps_a": 0.3, "num_walks": 40, "seed": 11}}
QUERIES = [3, 1, 4, 15, 92, 65, 7]

DELTA_METHOD = "probesim-walkindex"
DELTA_CONFIG = {DELTA_METHOD: {"eps_a": 0.3, "delta": 0.1, "seed": 11}}


def canonical(graph):
    """The canonical DiGraph form snapshots round-trip through."""
    return CSRGraph.from_digraph(graph).to_digraph()


def canonical_snapshot(graph, path):
    """A snapshot holding the *canonical* bytes of ``graph``."""
    write_snapshot(as_csr(canonical(graph)), path)
    return path


def scores_of(service, queries=QUERIES):
    return [service.single_source(q).scores.copy() for q in queries]


class TestSnapshotServing:
    @pytest.mark.parametrize("executor", ["sequential", "process"])
    def test_bit_identical_to_in_memory_service(self, tiny_wiki, tmp_path, executor):
        path = canonical_snapshot(tiny_wiki, tmp_path / "wiki.csr")
        with ParallelSimRankService(
            snapshot=path, methods=(METHOD,), configs=CONFIG,
            workers=2, executor=executor,
        ) as mapped, ParallelSimRankService(
            canonical(tiny_wiki), methods=(METHOD,), configs=CONFIG,
            workers=2, executor=executor,
        ) as live:
            for got, want in zip(scores_of(mapped), scores_of(live)):
                np.testing.assert_array_equal(got, want)

    def test_snapshot_service_is_read_only(self, tiny_wiki, tmp_path):
        path = canonical_snapshot(tiny_wiki, tmp_path / "wiki.csr")
        with ParallelSimRankService(
            snapshot=path, methods=(METHOD,), configs=CONFIG,
            workers=1, executor="sequential",
        ) as service:
            with pytest.raises(ConfigurationError, match="read-only|frozen|mutable"):
                service.apply_edges(added=[(0, 9)], removed=[])

    def test_constructor_exclusivity(self, tiny_wiki, tmp_path):
        path = canonical_snapshot(tiny_wiki, tmp_path / "wiki.csr")
        with pytest.raises(ConfigurationError, match="without graph"):
            ParallelSimRankService(tiny_wiki, snapshot=path)
        with pytest.raises(ConfigurationError, match="need one of"):
            ParallelSimRankService()
        store_dir = tmp_path / "store"
        with PersistentGraphStore.create(store_dir, tiny_wiki) as store:
            with pytest.raises(ConfigurationError, match="not both"):
                ParallelSimRankService(tiny_wiki, store=store)


class TestStoreBackedService:
    def test_every_burst_is_write_ahead_logged(self, small_graph, tmp_path):
        with PersistentGraphStore.create(tmp_path / "s", small_graph) as store:
            with ParallelSimRankService(
                store=store, methods=(METHOD,), configs=CONFIG,
                workers=1, executor="sequential",
            ) as service:
                service.apply_edges(added=[(5, 2)], removed=[])
                live_digest = CSRGraph.from_digraph(service.graph).digest()
            # the burst is durable: a fresh recovery replays it
            with recover(tmp_path / "s") as state:
                assert state.digest() == live_digest

    def test_rebuild_sync_checkpoints_a_generation(self, small_graph, tmp_path):
        with PersistentGraphStore.create(tmp_path / "s", small_graph) as store:
            with ParallelSimRankService(
                store=store, methods=(METHOD,), configs=CONFIG,
                workers=1, executor="sequential", maintenance="rebuild",
            ) as service:
                service.apply_edges(added=[(5, 2)], removed=[(2, 1)])
                assert store.generation == 2  # compaction checkpointed
                assert store.wal_records == 0  # folded into the snapshot
                live_digest = CSRGraph.from_digraph(service.graph).digest()
            with recover(tmp_path / "s") as state:
                assert state.generation == 2
                assert state.tail == ()
                assert state.digest() == live_digest

    def test_delta_sync_preserves_the_wal_tail(self, small_graph, tmp_path):
        with PersistentGraphStore.create(tmp_path / "s", small_graph) as store:
            with ParallelSimRankService(
                store=store, methods=(DELTA_METHOD,), configs=DELTA_CONFIG,
                workers=1, executor="sequential", maintenance="delta",
            ) as service:
                service.apply_edges(added=[(5, 2)], removed=[])
                service.apply_edges(added=[(0, 3)], removed=[])
                assert store.generation == 1  # no compaction happened
                assert store.wal_records == 2  # both bursts in the tail
                live_digest = CSRGraph.from_digraph(service.graph).digest()
            with recover(tmp_path / "s") as state:
                assert len(state.tail) == 2
                assert state.digest() == live_digest


class TestShardSnapshots:
    def test_snapshot_service_matches_live_service(self, tiny_wiki, tmp_path):
        graph = canonical(tiny_wiki)
        shard_dir = tmp_path / "shards"
        write_shard_snapshots(graph, shard_dir, shards=2)
        with ShardedSimRankService(
            methods=(METHOD,), configs=CONFIG, snapshot=shard_dir,
            workers=1, executor="sequential",
        ) as mapped, ShardedSimRankService(
            graph, methods=(METHOD,), configs=CONFIG, shards=2,
            workers=1, executor="sequential",
        ) as live:
            assert mapped.shards == 2
            for got, want in zip(scores_of(mapped), scores_of(live)):
                np.testing.assert_array_equal(got, want)

    def test_load_partition_validates_the_manifest(self, tiny_wiki, tmp_path):
        with pytest.raises(SnapshotError, match="not a shard-snapshot"):
            load_shard_partition(tmp_path)
        shard_dir = tmp_path / "shards"
        partition = write_shard_snapshots(canonical(tiny_wiki), shard_dir, shards=2)
        loaded = load_shard_partition(shard_dir)
        assert loaded.num_shards == partition.num_shards
        np.testing.assert_array_equal(loaded.owner, partition.owner)
        # a torn shard snapshot is rejected before any service spins up
        victim = next(p for p in shard_dir.iterdir() if p.suffix == ".csr")
        victim.write_bytes(victim.read_bytes()[:-10])
        with pytest.raises(SnapshotError):
            load_shard_partition(shard_dir)

    def test_shard_count_mismatch_rejected(self, tiny_wiki, tmp_path):
        shard_dir = tmp_path / "shards"
        write_shard_snapshots(canonical(tiny_wiki), shard_dir, shards=2)
        with pytest.raises(ConfigurationError, match="2 shards"):
            ShardedSimRankService(
                methods=(METHOD,), configs=CONFIG, snapshot=shard_dir, shards=3,
            )


class TestWorkloadReplayFromSnapshot:
    def workload(self, graph):
        return generate_workload(
            graph, num_ops=30, read_fraction=1.0, zipf_s=1.1, seed=5,
        )

    def test_digest_matches_graph_replay(self, tiny_wiki, tmp_path):
        graph = canonical(tiny_wiki)
        path = canonical_snapshot(tiny_wiki, tmp_path / "wiki.csr")
        trace = self.workload(graph)
        from_graph = run_workload(
            graph, trace, methods=(METHOD,), configs=CONFIG,
            workers=1, executor="sequential",
        )
        from_snapshot = run_workload(
            None, trace, methods=(METHOD,), configs=CONFIG,
            workers=1, executor="sequential", snapshot=path,
        )
        assert [r.digest for r in from_graph.reports] == [
            r.digest for r in from_snapshot.reports
        ]

    def test_validation(self, tiny_wiki, tmp_path):
        graph = canonical(tiny_wiki)
        path = canonical_snapshot(tiny_wiki, tmp_path / "wiki.csr")
        trace = self.workload(graph)
        with pytest.raises(EvaluationError, match="not both"):
            run_workload(graph, trace, (METHOD,), snapshot=path)
        with pytest.raises(EvaluationError, match="need a graph"):
            run_workload(None, trace, (METHOD,))
        with pytest.raises(EvaluationError, match="thread executor"):
            run_workload(None, trace, (METHOD,), snapshot=path, executor="thread")
        mutating = generate_workload(
            graph, num_ops=10, read_fraction=0.5, seed=5,
        )
        with pytest.raises(EvaluationError, match="read-only"):
            run_workload(
                None, mutating, (METHOD,), snapshot=path, executor="sequential",
            )
