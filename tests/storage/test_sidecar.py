"""Walk-cache sidecars: warm restarts must be bit-identical or refused."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.walk_index import WalkIndex
from repro.graph.dynamic import EdgeUpdate, apply_update
from repro.storage import SidecarError, load_walk_cache, save_walk_cache

QUERIES = (0, 3, 7)


@pytest.fixture()
def warm_index(tiny_wiki) -> WalkIndex:
    index = WalkIndex(tiny_wiki, eps_a=0.3, delta=0.1, seed=42)
    index.warm(QUERIES)
    return index


class TestRoundTrip:
    def test_restore_counts_and_scores_bitwise(self, warm_index, tiny_wiki, tmp_path):
        path = tmp_path / "walks.bin"
        expected = {q: warm_index.single_source(q).scores for q in QUERIES}
        saved = save_walk_cache(warm_index, path)
        assert saved == warm_index.num_cached

        fresh = WalkIndex(tiny_wiki, eps_a=0.3, delta=0.1, seed=42)
        assert load_walk_cache(fresh, path) == saved
        assert fresh.num_cached == saved
        for query in QUERIES:
            np.testing.assert_array_equal(
                fresh.single_source(query).scores, expected[query]
            )
        # every query above was a cache hit, not a rebuild
        assert fresh.hit_rate == 1.0

    def test_save_is_atomic_overwrite(self, warm_index, tmp_path):
        path = tmp_path / "walks.bin"
        save_walk_cache(warm_index, path)
        first = path.read_bytes()
        save_walk_cache(warm_index, path)
        assert path.read_bytes() == first


class TestRefusals:
    def test_missing_file(self, warm_index, tmp_path):
        with pytest.raises(SidecarError, match="not found"):
            load_walk_cache(warm_index, tmp_path / "nope.bin")

    def test_bad_magic(self, warm_index, tmp_path):
        path = tmp_path / "walks.bin"
        save_walk_cache(warm_index, path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(raw)
        with pytest.raises(SidecarError, match="magic"):
            load_walk_cache(warm_index, path)

    def test_truncated_header(self, warm_index, tmp_path):
        path = tmp_path / "walks.bin"
        save_walk_cache(warm_index, path)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(SidecarError, match="truncated"):
            load_walk_cache(warm_index, path)

    def test_truncated_payload(self, warm_index, tmp_path):
        path = tmp_path / "walks.bin"
        save_walk_cache(warm_index, path)
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(SidecarError, match="torn"):
            load_walk_cache(warm_index, path)

    def test_payload_corruption(self, warm_index, tmp_path):
        path = tmp_path / "walks.bin"
        save_walk_cache(warm_index, path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(raw)
        with pytest.raises(SidecarError, match="CRC"):
            load_walk_cache(warm_index, path)

    def test_graph_digest_mismatch(self, warm_index, tiny_wiki, tmp_path):
        path = tmp_path / "walks.bin"
        save_walk_cache(warm_index, path)
        moved_on = tiny_wiki.copy()
        apply_update(moved_on, EdgeUpdate("insert", 0, 199))
        drifted = WalkIndex(moved_on, eps_a=0.3, delta=0.1, seed=42)
        with pytest.raises(SidecarError, match="different graph"):
            load_walk_cache(drifted, path)

    def test_config_mismatch(self, warm_index, tiny_wiki, tmp_path):
        path = tmp_path / "walks.bin"
        save_walk_cache(warm_index, path)
        other = WalkIndex(tiny_wiki, eps_a=0.15, delta=0.1, seed=42)
        with pytest.raises(SidecarError, match="different ProbeSim"):
            load_walk_cache(other, path)
