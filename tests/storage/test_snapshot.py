"""Snapshot files: round trips, header validation, and corruption rejection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph
from repro.graph.csr import SHM_LAYOUT, payload_layout
from repro.storage import (
    MappedSnapshot,
    SnapshotError,
    attach_snapshot,
    read_snapshot_header,
    write_snapshot,
)
from repro.storage.snapshot import HEADER_BYTES


@pytest.fixture()
def csr(small_graph) -> CSRGraph:
    return CSRGraph.from_digraph(small_graph)


class TestRoundTrip:
    def test_write_attach_reproduces_arrays_bitwise(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        header = write_snapshot(csr, path)
        assert header.num_nodes == csr.num_nodes
        assert header.num_edges == csr.num_edges
        assert header.digest == csr.digest()
        with attach_snapshot(path) as mapped:
            shared = mapped.graph()
            assert shared.num_nodes == csr.num_nodes
            for field, _ in SHM_LAYOUT:
                np.testing.assert_array_equal(
                    getattr(shared, field), getattr(csr, field)
                )
            del shared

    def test_digraph_input_is_canonicalised(self, small_graph, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(small_graph, path)
        expected = CSRGraph.from_digraph(small_graph)
        with attach_snapshot(path, verify=True) as mapped:
            assert mapped.graph().digest() == expected.digest()

    def test_payload_bytes_match_shm_layout_exactly(self, csr, tmp_path):
        """The file payload is byte-identical to a shared-memory segment.

        This is the property the whole mmap-serving design rests on: the
        parallel layer's view construction works unchanged on either.
        """
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        layout, payload_size = payload_layout(csr.num_nodes, csr.num_edges)
        raw = path.read_bytes()
        assert len(raw) == HEADER_BYTES + payload_size
        payload = raw[HEADER_BYTES:]
        for field, dtype, offset, count in layout:
            expected = np.ascontiguousarray(getattr(csr, field), dtype=dtype)
            got = np.frombuffer(
                payload, dtype=dtype, count=count, offset=offset
            )
            np.testing.assert_array_equal(got, expected)

    def test_overwrite_is_atomic_replace(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        write_snapshot(csr, path)  # second write replaces, never appends
        assert read_snapshot_header(path).digest == csr.digest()

    def test_empty_graph_round_trips(self, tmp_path):
        from repro.graph import DiGraph

        csr = CSRGraph.from_digraph(DiGraph(3))
        path = tmp_path / "empty.csr"
        write_snapshot(csr, path)
        with attach_snapshot(path, verify=True) as mapped:
            g = mapped.graph()
            assert g.num_nodes == 3
            assert g.num_edges == 0


class TestHeader:
    def test_read_header_without_payload_scan(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        header = read_snapshot_header(path)
        assert (header.num_nodes, header.num_edges) == (
            csr.num_nodes, csr.num_edges,
        )
        assert header.file_bytes == path.stat().st_size

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="not found"):
            read_snapshot_header(tmp_path / "nope.csr")

    def test_bad_magic(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"XXXX"
        path.write_bytes(raw)
        with pytest.raises(SnapshotError, match="magic"):
            read_snapshot_header(path)

    def test_bad_version(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        raw = bytearray(path.read_bytes())
        raw[4] = 99  # version field; CRC now also wrong, version wins
        path.write_bytes(raw)
        with pytest.raises(SnapshotError, match="version"):
            read_snapshot_header(path)

    def test_header_crc_detects_field_corruption(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        raw = bytearray(path.read_bytes())
        raw[8] ^= 0xFF  # flip a num_nodes byte
        path.write_bytes(raw)
        with pytest.raises(SnapshotError, match="CRC"):
            read_snapshot_header(path)

    @pytest.mark.parametrize("keep", [0, 1, 17, 63])
    def test_truncated_header(self, csr, tmp_path, keep):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        path.write_bytes(path.read_bytes()[:keep])
        with pytest.raises(SnapshotError, match="truncated"):
            read_snapshot_header(path)

    def test_truncated_payload(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(SnapshotError, match="bytes"):
            read_snapshot_header(path)


class TestVerification:
    def test_payload_corruption_caught_by_verify(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01  # flip one payload bit; header stays valid
        path.write_bytes(raw)
        read_snapshot_header(path)  # header-only check passes
        with pytest.raises(SnapshotError, match="digest"):
            attach_snapshot(path, verify=True)

    def test_plain_attach_skips_payload_scan(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(raw)
        with attach_snapshot(path) as mapped:  # verify=False: attaches fine
            assert mapped.header.num_nodes == csr.num_nodes


class TestMappedSnapshotLifecycle:
    def test_buf_matches_shm_offsets(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        mapped = MappedSnapshot.open(path)
        _, payload_size = payload_layout(csr.num_nodes, csr.num_edges)
        assert len(mapped.buf) == payload_size
        mapped.close()

    def test_close_matches_shared_memory_semantics(self, csr, tmp_path):
        """close() releases the mapping like SharedMemory.close does.

        Views must be dropped first (the caller discipline the parallel
        layer already follows for shm segments); close is idempotent.
        """
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        mapped = MappedSnapshot.open(path)
        graph = mapped.graph()
        assert graph.num_edges == csr.num_edges
        del graph
        mapped.close()
        mapped.close()  # idempotent

    def test_closed_buf_raises(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        mapped = MappedSnapshot.open(path)
        mapped.close()
        with pytest.raises(SnapshotError, match="closed"):
            mapped.buf  # noqa: B018 - the access is the assertion

    def test_unlink_is_noop(self, csr, tmp_path):
        """Releasing a mapping must never delete the durable file."""
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        with attach_snapshot(path) as mapped:
            mapped.unlink()
        assert path.exists()

    def test_two_attachments_share_the_file(self, csr, tmp_path):
        path = tmp_path / "g.csr"
        write_snapshot(csr, path)
        with attach_snapshot(path) as a, attach_snapshot(path) as b:
            ga, gb = a.graph(), b.graph()
            np.testing.assert_array_equal(ga.out_indices, gb.out_indices)
            del ga, gb
