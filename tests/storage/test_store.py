"""Store directories: generation lifecycle, recovery selection, repair."""

from __future__ import annotations

import pytest

from repro.graph import CSRGraph
from repro.graph.dynamic import EdgeUpdate, apply_update
from repro.storage import (
    PersistentGraphStore,
    StoreError,
    WriteAheadLog,
    recover,
    write_snapshot,
)
from repro.storage.store import snapshot_path, wal_path

BURST = (
    EdgeUpdate("insert", 5, 2),
    EdgeUpdate("insert", 0, 3),
    EdgeUpdate("delete", 2, 1),
)


def oracle(graph, updates):
    """Sequentially applied updates on a copy — the recovery ground truth."""
    out = graph.copy()
    for update in updates:
        apply_update(out, update)
    return out


def digest_of(graph) -> str:
    return CSRGraph.from_digraph(graph).digest()


class TestLifecycle:
    def test_create_then_materialize(self, small_graph, tmp_path):
        with PersistentGraphStore.create(tmp_path / "s", small_graph) as store:
            assert store.generation == 1
            assert store.wal_records == 0
            assert digest_of(store.materialize()) == digest_of(small_graph)
        assert snapshot_path(tmp_path / "s", 1).exists()
        assert wal_path(tmp_path / "s", 1).exists()

    def test_create_refuses_existing_store(self, small_graph, tmp_path):
        PersistentGraphStore.create(tmp_path / "s", small_graph).close()
        with pytest.raises(StoreError, match="already holds a store"):
            PersistentGraphStore.create(tmp_path / "s", small_graph)

    def test_log_then_materialize_applies_tail(self, small_graph, tmp_path):
        with PersistentGraphStore.create(tmp_path / "s", small_graph) as store:
            assert store.log(BURST) == len(BURST)
            live = store.materialize()
        assert digest_of(live) == digest_of(oracle(small_graph, BURST))

    def test_checkpoint_rotates_and_deletes_old_generation(
        self, small_graph, tmp_path
    ):
        root = tmp_path / "s"
        with PersistentGraphStore.create(root, small_graph) as store:
            store.log(BURST)
            folded = oracle(small_graph, BURST)
            assert store.checkpoint(folded) == 2
            assert store.generation == 2
            assert store.wal_records == 0  # fresh log for the new generation
        assert not snapshot_path(root, 1).exists()
        assert not wal_path(root, 1).exists()
        assert snapshot_path(root, 2).exists()
        with recover(root) as state:
            assert state.generation == 2
            assert state.tail == ()
            assert state.digest() == digest_of(folded)

    def test_open_resumes_logging(self, small_graph, tmp_path):
        root = tmp_path / "s"
        with PersistentGraphStore.create(root, small_graph) as store:
            store.log(BURST[:1])
        with PersistentGraphStore.open(root) as store:
            assert store.wal_records == 1
            store.log(BURST[1:])
        with recover(root) as state:
            assert state.tail == BURST
            assert state.digest() == digest_of(oracle(small_graph, BURST))


class TestRecover:
    def test_read_only_and_idempotent(self, small_graph, tmp_path):
        root = tmp_path / "s"
        with PersistentGraphStore.create(root, small_graph) as store:
            store.log(BURST)
        before = sorted(
            (p.name, p.stat().st_size) for p in root.iterdir()
        )
        digests = []
        for _ in range(2):
            with recover(root) as state:
                digests.append(state.digest())
        assert digests[0] == digests[1]
        after = sorted((p.name, p.stat().st_size) for p in root.iterdir())
        assert before == after

    def test_empty_tail_serves_zero_copy(self, small_graph, tmp_path):
        root = tmp_path / "s"
        PersistentGraphStore.create(root, small_graph).close()
        with recover(root) as state:
            csr = state.csr()
            # the digest comes straight from the verified header
            assert state.digest() == csr.digest()
            del csr

    def test_missing_wal_is_empty_tail(self, small_graph, tmp_path):
        root = tmp_path / "s"
        PersistentGraphStore.create(root, small_graph).close()
        wal_path(root, 1).unlink()
        with recover(root) as state:
            assert state.tail == ()
            assert state.digest() == digest_of(small_graph)

    def test_corrupt_newest_snapshot_falls_back_a_generation(
        self, small_graph, tmp_path
    ):
        root = tmp_path / "s"
        with PersistentGraphStore.create(root, small_graph) as store:
            store.log(BURST)
        # fabricate a "newer" generation whose snapshot is torn
        folded = oracle(small_graph, BURST)
        write_snapshot(folded, snapshot_path(root, 2))
        raw = snapshot_path(root, 2).read_bytes()
        snapshot_path(root, 2).write_bytes(raw[:-4])
        with recover(root) as state:
            assert state.generation == 1
            assert state.tail == BURST
            assert state.digest() == digest_of(folded)

    def test_payload_corruption_needs_verify(self, small_graph, tmp_path):
        root = tmp_path / "s"
        PersistentGraphStore.create(root, small_graph).close()
        raw = bytearray(snapshot_path(root, 1).read_bytes())
        raw[-1] ^= 0x01
        snapshot_path(root, 1).write_bytes(raw)
        with pytest.raises(StoreError, match="no recoverable generation"):
            recover(root, verify=True)

    def test_wal_generation_mismatch_ignores_the_log(self, small_graph, tmp_path):
        root = tmp_path / "s"
        PersistentGraphStore.create(root, small_graph).close()
        # replace the WAL with one stamped for a different generation
        with WriteAheadLog.create(wal_path(root, 1), generation=9) as wal:
            wal.append(BURST)
        with recover(root) as state:
            assert state.tail == ()  # mismatched log never replays
            assert state.digest() == digest_of(small_graph)

    def test_errors(self, small_graph, tmp_path):
        with pytest.raises(StoreError, match="not a store directory"):
            recover(tmp_path / "missing")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(StoreError, match="no snapshot files"):
            recover(empty)


class TestOpenRepairs:
    def test_torn_wal_tail_is_truncated(self, small_graph, tmp_path):
        root = tmp_path / "s"
        with PersistentGraphStore.create(root, small_graph) as store:
            store.log(BURST)
        log = wal_path(root, 1)
        intact = log.stat().st_size
        log.write_bytes(log.read_bytes() + b"\x13\x37")
        with PersistentGraphStore.open(root) as store:
            assert store.wal_records == len(BURST)
        assert log.stat().st_size == intact

    def test_missing_wal_is_recreated(self, small_graph, tmp_path):
        root = tmp_path / "s"
        PersistentGraphStore.create(root, small_graph).close()
        wal_path(root, 1).unlink()
        with PersistentGraphStore.open(root) as store:
            assert store.wal_records == 0
            store.log(BURST)
        with recover(root) as state:
            assert state.tail == BURST

    def test_sweep_removes_stale_generations_and_debris(
        self, small_graph, tmp_path
    ):
        root = tmp_path / "s"
        with PersistentGraphStore.create(root, small_graph) as store:
            store.log(BURST)
            store.checkpoint(oracle(small_graph, BURST))
        # re-create generation-1 leftovers and crashed tmp files by hand
        write_snapshot(small_graph, snapshot_path(root, 1))
        WriteAheadLog.create(wal_path(root, 1), 1).close()
        (root / ".snapshot-000003.csr.tmp-999").write_bytes(b"junk")
        (root / ".ingest-scratch").write_bytes(b"junk")
        with PersistentGraphStore.open(root) as store:
            assert store.generation == 2
        survivors = sorted(p.name for p in root.iterdir())
        assert survivors == ["snapshot-000002.csr", "wal-000002.log"]
