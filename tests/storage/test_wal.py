"""Write-ahead log: framing, replay, and torn-tail fault injection."""

from __future__ import annotations

import pytest

from repro.graph.dynamic import EdgeUpdate
from repro.storage import WalError, WriteAheadLog
from repro.storage.wal import HEADER_BYTES, RECORD_BYTES

UPDATES = (
    EdgeUpdate("insert", 3, 4),
    EdgeUpdate("delete", 0, 1),
    EdgeUpdate("insert", 5, 0),
)


def make_log(path, updates=UPDATES, generation=7):
    with WriteAheadLog.create(path, generation) as wal:
        wal.append(updates)
    return path


class TestRoundTrip:
    def test_append_replay(self, tmp_path):
        path = make_log(tmp_path / "w.log")
        tail = WriteAheadLog.replay(path)
        assert tail.generation == 7
        assert tail.updates == UPDATES
        assert tail.torn_bytes == 0
        assert tail.valid_bytes == HEADER_BYTES + 3 * RECORD_BYTES

    def test_empty_log(self, tmp_path):
        with WriteAheadLog.create(tmp_path / "w.log", 1) as wal:
            assert wal.records == 0
        tail = WriteAheadLog.replay(tmp_path / "w.log")
        assert tail.updates == ()
        assert tail.valid_bytes == HEADER_BYTES

    def test_empty_append_is_noop(self, tmp_path):
        with WriteAheadLog.create(tmp_path / "w.log", 1) as wal:
            assert wal.append([]) == 0
        assert (tmp_path / "w.log").stat().st_size == HEADER_BYTES

    def test_multiple_bursts_accumulate(self, tmp_path):
        with WriteAheadLog.create(tmp_path / "w.log", 2, fsync=False) as wal:
            assert wal.append(UPDATES[:1]) == 1
            assert wal.append(UPDATES[1:]) == 3
        assert WriteAheadLog.replay(tmp_path / "w.log").updates == UPDATES

    def test_open_resumes_appending(self, tmp_path):
        path = make_log(tmp_path / "w.log")
        extra = EdgeUpdate("delete", 9, 9 + 1)
        with WriteAheadLog.open(path) as wal:
            assert wal.records == 3
            wal.append([extra])
        assert WriteAheadLog.replay(path).updates == UPDATES + (extra,)

    def test_append_after_close_refused(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "w.log", 1)
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append(UPDATES)
        wal.close()  # idempotent


class TestHeaderValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(WalError, match="not found"):
            WriteAheadLog.replay(tmp_path / "nope.log")

    def test_bad_magic(self, tmp_path):
        path = make_log(tmp_path / "w.log")
        raw = bytearray(path.read_bytes())
        raw[:4] = b"JUNK"
        path.write_bytes(raw)
        with pytest.raises(WalError, match="magic"):
            WriteAheadLog.replay(path)

    def test_bad_version(self, tmp_path):
        path = make_log(tmp_path / "w.log")
        raw = bytearray(path.read_bytes())
        raw[4] = 42
        path.write_bytes(raw)
        with pytest.raises(WalError, match="version"):
            WriteAheadLog.replay(path)

    def test_header_crc(self, tmp_path):
        path = make_log(tmp_path / "w.log")
        raw = bytearray(path.read_bytes())
        raw[8] ^= 0xFF  # corrupt the generation field
        path.write_bytes(raw)
        with pytest.raises(WalError, match="CRC"):
            WriteAheadLog.replay(path)

    def test_truncated_header(self, tmp_path):
        path = make_log(tmp_path / "w.log")
        path.write_bytes(path.read_bytes()[: HEADER_BYTES - 1])
        with pytest.raises(WalError, match="truncated"):
            WriteAheadLog.replay(path)


class TestTornTail:
    """Fault injection: a writer killed mid-append at every byte offset."""

    def test_truncation_at_every_byte_of_the_last_record(self, tmp_path):
        """Cut the file anywhere inside the last record: replay returns
        exactly the records before it — never a torn or corrupt one."""
        full = make_log(tmp_path / "full.log").read_bytes()
        last_start = HEADER_BYTES + 2 * RECORD_BYTES
        for cut in range(last_start, len(full)):
            path = tmp_path / "cut.log"
            path.write_bytes(full[:cut])
            tail = WriteAheadLog.replay(path)
            assert tail.updates == UPDATES[:2], f"cut at byte {cut}"
            assert tail.valid_bytes == last_start
            assert tail.torn_bytes == cut - last_start
            path.unlink()

    def test_truncation_at_every_record_boundary(self, tmp_path):
        full = make_log(tmp_path / "full.log").read_bytes()
        for kept in range(len(UPDATES) + 1):
            cut = HEADER_BYTES + kept * RECORD_BYTES
            path = tmp_path / "cut.log"
            path.write_bytes(full[:cut])
            tail = WriteAheadLog.replay(path)
            assert tail.updates == UPDATES[:kept]
            assert tail.torn_bytes == 0
            path.unlink()

    def test_corrupt_middle_record_ends_replay_there(self, tmp_path):
        """A flipped byte mid-log invalidates that record *and everything
        after it* — replay never resynchronises past corruption."""
        path = make_log(tmp_path / "w.log")
        raw = bytearray(path.read_bytes())
        raw[HEADER_BYTES + RECORD_BYTES + 6] ^= 0x01  # inside record 2
        path.write_bytes(raw)
        tail = WriteAheadLog.replay(path)
        assert tail.updates == UPDATES[:1]
        assert tail.torn_bytes == 2 * RECORD_BYTES

    def test_replay_is_read_only_and_idempotent(self, tmp_path):
        path = make_log(tmp_path / "w.log")
        torn = path.read_bytes() + b"\x01\x02\x03"
        path.write_bytes(torn)
        first = WriteAheadLog.replay(path)
        second = WriteAheadLog.replay(path)
        assert first == second
        assert path.read_bytes() == torn  # untouched

    def test_open_truncates_the_torn_tail(self, tmp_path):
        path = make_log(tmp_path / "w.log")
        intact_size = path.stat().st_size
        path.write_bytes(path.read_bytes() + b"\xde\xad\xbe")
        with WriteAheadLog.open(path) as wal:
            assert wal.records == 3
        assert path.stat().st_size == intact_size
        assert WriteAheadLog.replay(path).torn_bytes == 0

    def test_append_after_repair_replays_cleanly(self, tmp_path):
        path = make_log(tmp_path / "w.log")
        path.write_bytes(path.read_bytes()[:-5])  # tear the last record
        extra = EdgeUpdate("insert", 8, 9)
        with WriteAheadLog.open(path) as wal:
            assert wal.records == 2  # the torn record is gone
            wal.append([extra])
        assert WriteAheadLog.replay(path).updates == UPDATES[:2] + (extra,)
