"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import toy_graph
from repro.graph import write_edge_list


@pytest.fixture()
def toy_path(tmp_path):
    path = tmp_path / "toy.txt"
    write_edge_list(toy_graph(), path)
    return str(path)


class TestDatasetCommand:
    def test_generates_edge_list(self, tmp_path, capsys):
        out = tmp_path / "wv.txt"
        code = main(["dataset", "--name", "wiki-vote", "--scale", "tiny",
                     "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_unknown_name_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["dataset", "--name", "orkut", "--out", str(tmp_path / "x.txt")])


class TestStatsCommand:
    def test_prints_table(self, toy_path, capsys):
        assert main(["stats", toy_path]) == 0
        out = capsys.readouterr().out
        assert "n" in out and "8" in out and "20" in out

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope.txt")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestMethodsCommand:
    def test_lists_registry_with_capabilities(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("probesim", "sling", "tsf", "topsim", "mc", "power"):
            assert name in out
        assert "dynamic" in out and "incremental" in out


class TestMethodsMarkdown:
    def test_markdown_table_matches_registry(self, capsys):
        from repro.api.registry import method_names

        assert main(["methods", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| method |")
        for name in method_names():
            assert f"`{name}`" in out
        assert "config keys" in out


class TestWorkloadCommand:
    def test_runs_and_writes_json(self, toy_path, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main([
            "workload", toy_path,
            "--methods", "probesim-batched,tsf",
            "--ops", "60", "--read-fraction", "0.8", "--workers", "2",
            "--seed", "5", "--eps-a", "0.3", "--rg", "10", "--rq", "2",
            "--json", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "workload:" in printed
        assert "p95_ms" in printed and "qps" in printed
        import json

        payload = json.loads(out.read_text())
        assert {r["method"] for r in payload["reports"]} == {"probesim-batched", "tsf"}
        for report in payload["reports"]:
            assert report["latency"]["p50_s"] >= 0
            assert report["digest"]
        assert payload["trace"]["seed"] == 5

    def test_unknown_method_is_clean_error(self, toy_path, capsys):
        code = main([
            "workload", toy_path, "--methods", "nope", "--ops", "10",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_read_fraction_is_clean_error(self, toy_path, capsys):
        code = main([
            "workload", toy_path, "--ops", "10", "--read-fraction", "1.5",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestQueryCommands:
    def test_single_source_probesim(self, toy_path, capsys):
        code = main([
            "single-source", toy_path, "--query", "0", "--c", "0.25",
            "--eps-a", "0.05", "--seed", "1", "--limit", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "probesim" in out
        assert "3" in out  # node d (id 3) is a's top node

    def test_topk_power_method_matches_table2(self, toy_path, capsys):
        code = main([
            "topk", toy_path, "--query", "0", "--k", "3",
            "--method", "power", "--c", "0.25",
        ])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        first_data_row = lines[3]
        assert first_data_row.split("|")[1].strip() == "3"  # node d ranked #1

    @pytest.mark.parametrize(
        "method_args",
        [
            ["--method", "mc", "--num-walks", "300"],
            ["--method", "topsim"],
            ["--method", "trun-topsim"],
            ["--method", "prio-topsim"],
            ["--method", "tsf", "--rg", "20", "--rq", "2"],
            ["--method", "sling"],
            ["--method", "probesim", "--strategy", "basic", "--num-walks", "200"],
            ["--method", "probesim-walkindex", "--num-walks", "100"],
            ["--method", "probesim-adaptive", "--num-walks", "100"],
        ],
    )
    def test_every_method_runs(self, toy_path, capsys, method_args):
        code = main(
            ["topk", toy_path, "--query", "0", "--k", "2", "--c", "0.25",
             "--seed", "3"] + method_args
        )
        assert code == 0
        assert "top-2" in capsys.readouterr().out

    def test_bad_query_node_is_clean_error(self, toy_path, capsys):
        code = main(["topk", toy_path, "--query", "99", "--k", "2", "--seed", "1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_module_entry_point(self, toy_path):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "stats", toy_path],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "directed" in proc.stdout
