"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import toy_graph
from repro.graph import write_edge_list


@pytest.fixture()
def toy_path(tmp_path):
    path = tmp_path / "toy.txt"
    write_edge_list(toy_graph(), path)
    return str(path)


class TestDatasetCommand:
    def test_generates_edge_list(self, tmp_path, capsys):
        out = tmp_path / "wv.txt"
        code = main(["dataset", "--name", "wiki-vote", "--scale", "tiny",
                     "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_unknown_name_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["dataset", "--name", "orkut", "--out", str(tmp_path / "x.txt")])


class TestStatsCommand:
    def test_prints_table(self, toy_path, capsys):
        assert main(["stats", toy_path]) == 0
        out = capsys.readouterr().out
        assert "n" in out and "8" in out and "20" in out

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope.txt")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestMethodsCommand:
    def test_lists_registry_with_capabilities(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("probesim", "sling", "tsf", "topsim", "mc", "power"):
            assert name in out
        assert "dynamic" in out and "incremental" in out


class TestMethodsMarkdown:
    def test_markdown_table_matches_registry(self, capsys):
        from repro.api.registry import method_names

        assert main(["methods", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| method |")
        for name in method_names():
            assert f"`{name}`" in out
        assert "config keys" in out


class TestWorkloadCommand:
    def test_runs_and_writes_json(self, toy_path, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main([
            "workload", toy_path,
            "--methods", "probesim-batched,tsf",
            "--ops", "60", "--read-fraction", "0.8", "--workers", "2",
            "--seed", "5", "--eps-a", "0.3", "--rg", "10", "--rq", "2",
            "--json", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "workload:" in printed
        assert "p95_ms" in printed and "qps" in printed
        import json

        payload = json.loads(out.read_text())
        assert {r["method"] for r in payload["reports"]} == {"probesim-batched", "tsf"}
        for report in payload["reports"]:
            assert report["latency"]["p50_s"] >= 0
            assert report["digest"]
        assert payload["trace"]["seed"] == 5

    def test_unknown_method_is_clean_error(self, toy_path, capsys):
        code = main([
            "workload", toy_path, "--methods", "nope", "--ops", "10",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_read_fraction_is_clean_error(self, toy_path, capsys):
        code = main([
            "workload", toy_path, "--ops", "10", "--read-fraction", "1.5",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestQueryCommands:
    def test_single_source_probesim(self, toy_path, capsys):
        code = main([
            "single-source", toy_path, "--query", "0", "--c", "0.25",
            "--eps-a", "0.05", "--seed", "1", "--limit", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "probesim" in out
        assert "3" in out  # node d (id 3) is a's top node

    def test_topk_power_method_matches_table2(self, toy_path, capsys):
        code = main([
            "topk", toy_path, "--query", "0", "--k", "3",
            "--method", "power", "--c", "0.25",
        ])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        first_data_row = lines[3]
        assert first_data_row.split("|")[1].strip() == "3"  # node d ranked #1

    @pytest.mark.parametrize(
        "method_args",
        [
            ["--method", "mc", "--num-walks", "300"],
            ["--method", "topsim"],
            ["--method", "trun-topsim"],
            ["--method", "prio-topsim"],
            ["--method", "tsf", "--rg", "20", "--rq", "2"],
            ["--method", "sling"],
            ["--method", "probesim", "--strategy", "basic", "--num-walks", "200"],
            ["--method", "probesim-walkindex", "--num-walks", "100"],
            ["--method", "probesim-adaptive", "--num-walks", "100"],
        ],
    )
    def test_every_method_runs(self, toy_path, capsys, method_args):
        code = main(
            ["topk", toy_path, "--query", "0", "--k", "2", "--c", "0.25",
             "--seed", "3"] + method_args
        )
        assert code == 0
        assert "top-2" in capsys.readouterr().out

    def test_bad_query_node_is_clean_error(self, toy_path, capsys):
        code = main(["topk", toy_path, "--query", "99", "--k", "2", "--seed", "1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_module_entry_point(self, toy_path):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "stats", toy_path],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "directed" in proc.stdout


class TestIngestCommand:
    def test_writes_snapshot_and_prints_stats(self, toy_path, tmp_path, capsys):
        out = tmp_path / "toy.csr"
        assert main(["ingest", toy_path, "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "nodes" in printed and "digest" in printed
        from repro.storage import read_snapshot_header

        header = read_snapshot_header(out)
        assert header.num_nodes == 8
        assert header.num_edges == 20

    def test_matches_in_memory_reference(self, toy_path, tmp_path):
        from repro.graph import read_edge_list
        from repro.storage import write_snapshot

        ingested = tmp_path / "a.csr"
        reference = tmp_path / "b.csr"
        assert main(["ingest", toy_path, "--out", str(ingested)]) == 0
        write_snapshot(read_edge_list(toy_path), reference)
        assert ingested.read_bytes() == reference.read_bytes()

    def test_missing_input_is_clean_error(self, tmp_path, capsys):
        code = main([
            "ingest", str(tmp_path / "nope.txt"), "--out", str(tmp_path / "o.csr"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestRecoverCommand:
    def test_reports_recovered_state(self, tmp_path, capsys):
        from repro.datasets import toy_graph
        from repro.graph.dynamic import EdgeUpdate
        from repro.storage import PersistentGraphStore

        root = tmp_path / "store"
        with PersistentGraphStore.create(root, toy_graph()) as store:
            store.log([EdgeUpdate("insert", 0, 5)])
        assert main(["recover", str(root)]) == 0
        printed = capsys.readouterr().out
        assert "generation" in printed and "wal_tail" in printed
        assert "1" in printed  # one tail record

    def test_empty_directory_is_clean_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["recover", str(empty)]) == 2
        assert "error:" in capsys.readouterr().err


class TestWorkloadSnapshotReplay:
    def test_replays_from_snapshot(self, toy_path, tmp_path, capsys):
        snap = tmp_path / "toy.csr"
        assert main(["ingest", toy_path, "--out", str(snap)]) == 0
        capsys.readouterr()
        code = main([
            "workload", "--snapshot", str(snap),
            "--methods", "probesim-batched", "--ops", "20",
            "--read-fraction", "1", "--executor", "sequential",
            "--eps-a", "0.3", "--seed", "5",
        ])
        assert code == 0
        assert "qps" in capsys.readouterr().out

    def test_snapshot_plus_graph_is_clean_error(self, toy_path, tmp_path, capsys):
        snap = tmp_path / "toy.csr"
        assert main(["ingest", toy_path, "--out", str(snap)]) == 0
        capsys.readouterr()
        code = main([
            "workload", toy_path, "--snapshot", str(snap), "--ops", "10",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_snapshot_with_updates_is_clean_error(self, toy_path, tmp_path, capsys):
        snap = tmp_path / "toy.csr"
        assert main(["ingest", toy_path, "--out", str(snap)]) == 0
        capsys.readouterr()
        code = main([
            "workload", "--snapshot", str(snap), "--ops", "10",
            "--read-fraction", "0.5", "--executor", "sequential",
        ])
        assert code == 2
        assert "read-only" in capsys.readouterr().err

    def test_no_graph_no_snapshot_is_clean_error(self, capsys):
        code = main(["workload", "--ops", "10"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
