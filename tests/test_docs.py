"""Documentation consistency: generated artifacts current, links resolving.

Three committed artifacts are generated from the live package and must not
drift: the README's methods table (owned by the registry), the markdown API
reference under ``docs/api/`` (owned by the docstrings), and the internal
links across the markdown documents.  Each check runs the same tool CI
runs, so a local failure here reproduces the docs job exactly.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).parent.parent
TOOLS = REPO / "tools"


def run_tool(script: str, *args: str) -> subprocess.CompletedProcess:
    env_path = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(TOOLS / script), *args],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        timeout=300,
    )


class TestGeneratedDocs:
    def test_readme_methods_table_is_current(self):
        proc = run_tool("update_readme_methods.py", "--check")
        assert proc.returncode == 0, proc.stderr or proc.stdout

    def test_api_reference_is_current(self):
        proc = run_tool("build_docs.py", "--check")
        assert proc.returncode == 0, proc.stderr or proc.stdout

    def test_internal_links_resolve(self):
        proc = run_tool("check_links.py")
        assert proc.returncode == 0, proc.stderr or proc.stdout

    def test_link_checker_catches_breakage(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](no/such/file.md)\n", encoding="utf-8")
        proc = run_tool("check_links.py", str(bad))
        assert proc.returncode == 1
        assert "broken link" in proc.stderr


class TestArchitectureDoc:
    def test_architecture_names_every_package(self):
        text = (REPO / "ARCHITECTURE.md").read_text(encoding="utf-8")
        for package in ("graph/", "core/", "baselines/", "extensions/",
                        "api/", "parallel/", "server/", "storage/",
                        "workloads/", "eval/", "datasets/", "utils/"):
            assert package in text, f"ARCHITECTURE.md does not map {package}"

    def test_architecture_documents_both_data_flows(self):
        text = (REPO / "ARCHITECTURE.md").read_text(encoding="utf-8")
        assert "query data flow" in text
        assert "update data flow" in text

    def test_architecture_documents_parallel_serving(self):
        text = (REPO / "ARCHITECTURE.md").read_text(encoding="utf-8")
        assert "parallel serving data flow" in text
        assert "SharedCSRGraph" in text

    def test_architecture_documents_sharded_serving(self):
        text = (REPO / "ARCHITECTURE.md").read_text(encoding="utf-8")
        assert "sharded serving data flow" in text
        assert "ShardedSimRankService" in text

    def test_architecture_documents_http_serving(self):
        text = (REPO / "ARCHITECTURE.md").read_text(encoding="utf-8")
        assert "HTTP serving data flow" in text
        assert "SimRankHTTPApp" in text

    def test_architecture_documents_storage(self):
        text = (REPO / "ARCHITECTURE.md").read_text(encoding="utf-8")
        assert "storage & recovery data flow" in text
        assert "PersistentGraphStore" in text

    def test_readme_links_architecture_and_docs(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        assert "(ARCHITECTURE.md)" in text
        assert "(docs/README.md)" in text
