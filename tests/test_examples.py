"""Smoke tests: every example script must run to completion.

The examples double as end-to-end acceptance tests — each one contains its
own assertions (error budgets, recommendation quality, cache behaviour) and
ends with a "done." line.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_complete():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "topk_recommendation.py",
        "dynamic_stream.py",
        "pooling_evaluation.py",
        "walk_cache_service.py",
    } <= names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "done." in proc.stdout
