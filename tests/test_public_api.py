"""Meta-tests on the public API surface: exports are importable and every
public item carries a docstring (the documentation deliverable, enforced)."""

import importlib
import inspect
import pkgutil

import pytest

import repro

ALL_MODULES = sorted(
    name
    for _, name, __ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
)


class TestExports:
    def test_top_level_all_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_top_level_all_sorted(self):
        names = [n for n in repro.__all__ if not n.startswith("_")]
        assert names == sorted(names)  # case-sensitive (isort convention)

    @pytest.mark.parametrize(
        "package",
        ["repro.api", "repro.graph", "repro.core", "repro.baselines",
         "repro.eval", "repro.datasets", "repro.extensions", "repro.utils",
         "repro.workloads", "repro.parallel", "repro.server", "repro.storage"],
    )
    def test_subpackage_all_importable(self, package):
        module = importlib.import_module(package)
        assert module.__all__, package
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name}"

    def test_version_matches_pyproject(self):
        from pathlib import Path

        pyproject = Path(repro.__file__).parents[2] / "pyproject.toml"
        assert f'version = "{repro.__version__}"' in pyproject.read_text()


class TestDocstrings:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_public_item_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export; documented at its definition site
            assert obj.__doc__ and obj.__doc__.strip(), f"{module_name}.{name}"
            if inspect.isclass(obj):
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_") or not inspect.isfunction(attr):
                        continue
                    assert attr.__doc__ and attr.__doc__.strip(), (
                        f"{module_name}.{name}.{attr_name}"
                    )
