"""The perf-regression gate tool: directions, thresholds, bootstrap."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

from check_bench_regression import compare, main, metric_direction  # noqa: E402


def write(path: Path, gate: dict) -> Path:
    path.write_text(json.dumps({"bench": "x", "gate": gate}), encoding="utf-8")
    return path


class TestDirections:
    def test_throughput_metrics_are_higher_better(self):
        assert metric_direction("qps:process:w4") == "higher"
        assert metric_direction("speedup:cache") == "higher"
        assert metric_direction("hit:rate:cached") == "higher"

    def test_latency_metrics_are_lower_better(self):
        assert metric_direction("p95_ms:thread:w1") == "lower"
        assert metric_direction("latency:single-batched_s:n10000") == "lower"

    def test_unknown_prefix_is_rejected(self):
        with pytest.raises(SystemExit):
            metric_direction("vibes:excellent")


class TestCompare:
    def test_within_threshold_passes(self):
        assert compare({"qps:a": 90.0}, {"qps:a": 100.0}, 0.20) == []
        assert compare({"p95_ms:a": 115.0}, {"p95_ms:a": 100.0}, 0.20) == []

    def test_qps_drop_fails(self):
        failures = compare({"qps:a": 70.0}, {"qps:a": 100.0}, 0.20)
        assert len(failures) == 1 and "qps:a" in failures[0]

    def test_latency_rise_fails(self):
        failures = compare({"p95_ms:a": 130.0}, {"p95_ms:a": 100.0}, 0.20)
        assert len(failures) == 1 and "p95_ms:a" in failures[0]

    def test_missing_metric_fails(self):
        failures = compare({}, {"qps:a": 100.0}, 0.20)
        assert "missing" in failures[0]

    def test_zero_baseline_is_skipped(self):
        assert compare({"qps:a": 1.0}, {"qps:a": 0.0}, 0.20) == []


class TestCli:
    def test_bootstrap_passes_without_baseline(self, tmp_path):
        current = write(tmp_path / "current.json", {"qps:a": 10.0})
        assert main([str(current), str(tmp_path / "missing.json")]) == 0

    def test_strict_bootstrap_fails(self, tmp_path):
        current = write(tmp_path / "current.json", {"qps:a": 10.0})
        assert main([str(current), str(tmp_path / "missing.json"), "--strict"]) == 1

    def test_update_blesses_then_gate_passes_and_fails(self, tmp_path):
        current = write(tmp_path / "current.json", {"qps:a": 10.0})
        baseline = tmp_path / "baseline.json"
        assert main([str(current), str(baseline), "--update"]) == 0
        assert main([str(current), str(baseline)]) == 0
        regressed = write(tmp_path / "slow.json", {"qps:a": 7.0})
        assert main([str(regressed), str(baseline)]) == 1

    def test_empty_gate_is_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"bench": "x"}), encoding="utf-8")
        with pytest.raises(SystemExit):
            main([str(bad), str(bad)])

    def test_committed_baselines_self_compare(self):
        """The blessed baselines stay parseable and direction-valid."""
        baselines = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"
        for path in sorted(baselines.glob("BENCH_*.json")):
            assert main([str(path), str(path)]) == 0


class TestComparabilityGuard:
    def write_full(self, path, gate, **meta):
        payload = {"bench": "x", "gate": gate, **meta}
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_preset_mismatch_passes_without_verdict(self, tmp_path, capsys):
        smoke = self.write_full(tmp_path / "s.json", {"qps:a": 1.0}, preset="smoke")
        full = self.write_full(tmp_path / "f.json", {"qps:a": 100.0}, preset="full")
        assert main([str(smoke), str(full)]) == 0
        assert "not comparable" in capsys.readouterr().out

    def test_cores_mismatch_passes_without_verdict(self, tmp_path):
        a = self.write_full(tmp_path / "a.json", {"qps:a": 1.0}, cores=1)
        b = self.write_full(tmp_path / "b.json", {"qps:a": 100.0}, cores=4)
        assert main([str(a), str(b)]) == 0

    def test_strict_turns_mismatch_into_failure(self, tmp_path):
        a = self.write_full(tmp_path / "a.json", {"qps:a": 1.0}, cores=1)
        b = self.write_full(tmp_path / "b.json", {"qps:a": 100.0}, cores=4)
        assert main([str(a), str(b), "--strict"]) == 1

    def test_matching_meta_still_gates(self, tmp_path):
        a = self.write_full(tmp_path / "a.json", {"qps:a": 70.0},
                            preset="full", cores=4)
        b = self.write_full(tmp_path / "b.json", {"qps:a": 100.0},
                            preset="full", cores=4)
        assert main([str(a), str(b)]) == 1
