"""Unit tests for the utils subpackage (rng, validation, timer, sizing)."""

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator, spawn_generator
from repro.utils.sizing import deep_sizeof, format_bytes
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        assert as_generator(5).random() == as_generator(5).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert as_generator(rng) is rng

    def test_spawn_independent(self):
        parent = as_generator(7)
        child = spawn_generator(parent)
        assert child is not parent
        # spawning is deterministic given the parent state
        parent2 = as_generator(7)
        child2 = spawn_generator(parent2)
        assert child.random() == child2.random()


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2) == 2.0
        for bad in (0, -1, float("nan"), float("inf"), "3", True):
            with pytest.raises(ConfigurationError):
                check_positive("x", bad)

    def test_check_positive_int(self):
        assert check_positive_int("x", 3) == 3
        for bad in (0, -2, 1.5, True):
            with pytest.raises(ConfigurationError):
                check_positive_int("x", bad)

    def test_check_probability(self):
        assert check_probability("x", 0.5) == 0.5
        for bad in (0.0, 1.0, 2.0, -0.1):
            with pytest.raises(ConfigurationError):
                check_probability("x", bad)

    def test_check_fraction(self):
        assert check_fraction("x", 0.0) == 0.0
        assert check_fraction("x", 1.0) == 1.0
        for bad in (-0.01, 1.01, float("nan"), "a"):
            with pytest.raises(ConfigurationError):
                check_fraction("x", bad)


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.02
        assert len(t.laps) == 2
        assert t.mean_lap == pytest.approx(t.elapsed / 2)

    def test_start_stop(self):
        t = Timer()
        t.start()
        lap = t.stop()
        assert lap >= 0.0
        assert not t.running

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.laps == []

    def test_mean_lap_empty(self):
        assert Timer().mean_lap == 0.0

    def test_repr(self):
        assert "Timer" in repr(Timer())


class TestSizing:
    def test_numpy_counts_buffer(self):
        arr = np.zeros(1000, dtype=np.float64)
        assert deep_sizeof(arr) >= 8000

    def test_view_does_not_double_count(self):
        arr = np.zeros(1000)
        view = arr[:500]
        assert deep_sizeof(view) < 4000  # header only, no buffer

    def test_containers_recursive(self):
        flat = deep_sizeof([1, 2, 3])
        nested = deep_sizeof([[1, 2, 3], [4, 5, 6]])
        assert nested > flat

    def test_shared_objects_counted_once(self):
        shared = list(range(100))
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof([shared])

    def test_object_dict_followed(self):
        class Holder:
            def __init__(self):
                self.payload = np.zeros(500)

        assert deep_sizeof(Holder()) >= 4000

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KB"
        assert format_bytes(3 * 1024**2) == "3.00 MB"
        assert format_bytes(5 * 1024**3) == "5.00 GB"

    def test_format_bytes_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)
