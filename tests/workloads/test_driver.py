"""Tests for the workload replay driver (reproducibility, accounting)."""

import pytest

from repro.errors import ConfigurationError, EvaluationError
from repro.workloads import LatencyHistogram, generate_workload, run_workload

METHODS = ["probesim-batched", "tsf"]
CONFIGS = {
    "probesim-batched": {"eps_a": 0.3, "num_walks": 40, "seed": 11},
    "tsf": {"rg": 12, "rq": 3, "depth": 5, "seed": 11},
}


@pytest.fixture(scope="module")
def trace(tiny_wiki):
    return generate_workload(
        tiny_wiki, num_ops=80, read_fraction=0.75, zipf_s=1.0, seed=21
    )


def run(graph, trace, **kwargs):
    defaults = dict(methods=METHODS, configs=CONFIGS, workers=1)
    defaults.update(kwargs)
    return run_workload(graph, trace, **defaults)


class TestReproducibility:
    def test_single_worker_digests_stable(self, tiny_wiki, trace):
        first = run(tiny_wiki, trace)
        second = run(tiny_wiki, trace)
        assert [r.digest for r in first.reports] == [r.digest for r in second.reports]

    def test_multi_worker_digests_stable(self, tiny_wiki, trace):
        first = run(tiny_wiki, trace, workers=3)
        second = run(tiny_wiki, trace, workers=3)
        assert [r.digest for r in first.reports] == [r.digest for r in second.reports]

    def test_json_report_stable_modulo_timing(self, tiny_wiki, trace):
        def strip_timing(payload):
            volatile = {
                "wall_seconds", "qps", "latency", "maintenance_seconds",
                "maintenance_per_update_s", "metrics",  # metrics embed qps/pXX
            }
            return [
                {k: v for k, v in report.items() if k not in volatile}
                for report in payload["reports"]
            ]

        first = run(tiny_wiki, trace, workers=2).to_dict()
        second = run(tiny_wiki, trace, workers=2).to_dict()
        assert first["trace"] == second["trace"]
        assert strip_timing(first) == strip_timing(second)

    def test_trace_signature_echoed(self, tiny_wiki, trace):
        result = run(tiny_wiki, trace)
        assert result.trace_signature == trace.signature()


class TestAccounting:
    def test_every_op_accounted(self, tiny_wiki, trace):
        result = run(tiny_wiki, trace, workers=2)
        for report in result.reports:
            assert report.num_queries == trace.num_queries
            assert report.num_updates == trace.num_updates
            assert report.latency.count == trace.num_queries
            assert len(report.staleness_samples) == trace.num_queries
            assert report.wall_seconds > 0
            assert report.qps > 0

    def test_incremental_method_never_stale(self, tiny_wiki, trace):
        result = run(tiny_wiki, trace, methods=["tsf"],
                     configs={"tsf": CONFIGS["tsf"]}, sync_every=3)
        assert result.reports[0].staleness_max == 0
        assert result.reports[0].incremental_notifications == trace.num_updates

    def test_deferred_sync_records_staleness(self, tiny_wiki, trace):
        assert trace.num_updates > 0  # precondition for a meaningful test
        result = run(
            tiny_wiki, trace, methods=["probesim-batched"],
            configs={"probesim-batched": CONFIGS["probesim-batched"]},
            sync_every=1000,  # never sync mid-trace
        )
        report = result.reports[0]
        assert report.staleness_max > 0
        # queries after the last update batch see every unsynced update
        assert report.staleness_max <= trace.num_updates

    def test_fresh_sync_means_zero_staleness(self, tiny_wiki, trace):
        result = run(tiny_wiki, trace, methods=["probesim-batched"],
                     configs={"probesim-batched": CONFIGS["probesim-batched"]})
        assert result.reports[0].staleness_max == 0

    def test_graph_not_mutated(self, tiny_wiki, trace):
        before = tiny_wiki.copy()
        run(tiny_wiki, trace)
        assert tiny_wiki == before

    def test_rows_and_dict_render(self, tiny_wiki, trace):
        import json

        result = run(tiny_wiki, trace)
        rows = result.rows()
        assert {"method", "qps", "p50_ms", "p95_ms", "p99_ms"} <= set(rows[0])
        json.dumps(result.to_dict())  # JSON-serializable end to end


class TestValidation:
    def test_no_methods_rejected(self, tiny_wiki, trace):
        with pytest.raises(EvaluationError):
            run_workload(tiny_wiki, trace, methods=[])

    def test_config_for_unreplayed_method_rejected(self, tiny_wiki, trace):
        with pytest.raises(EvaluationError, match="not replayed"):
            run_workload(tiny_wiki, trace, methods=["tsf"],
                         configs={"sling": {}})

    def test_unknown_method_rejected(self, tiny_wiki, trace):
        with pytest.raises(ConfigurationError):
            run_workload(tiny_wiki, trace, methods=["no-such-method"])

    def test_bad_workers_rejected(self, tiny_wiki, trace):
        with pytest.raises(ConfigurationError):
            run(tiny_wiki, trace, workers=0)


class TestLatencyHistogram:
    def test_percentiles_and_summary(self):
        h = LatencyHistogram()
        for ms in range(1, 101):
            h.record(ms / 1000)
        assert h.count == 100
        assert h.percentile(50) == pytest.approx(0.0505, abs=1e-3)
        assert h.percentile(99) == pytest.approx(0.099, abs=1e-2)
        summary = h.summary()
        assert summary["p95_s"] <= summary["p99_s"] <= summary["max_s"]

    def test_empty_histogram_is_zero(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0

    def test_negative_sample_rejected(self):
        with pytest.raises(EvaluationError):
            LatencyHistogram().record(-1.0)

    def test_bad_percentile_rejected(self):
        with pytest.raises(EvaluationError):
            LatencyHistogram().percentile(101)

    def test_merge_and_buckets(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(0.001)
        b.record(0.01)
        a.merge(b)
        assert a.count == 2
        assert sum(a.bucket_counts()) == 2

    def test_outliers_clamp_into_end_buckets(self):
        h = LatencyHistogram()
        h.record(0.0)        # below the 1µs bucket floor
        h.record(1_000.0)    # above the 100s bucket ceiling
        counts = h.bucket_counts()
        assert sum(counts) == h.count == 2  # nothing silently dropped
        assert counts[0] == 1 and counts[-1] == 1
        assert h.max == 1_000.0  # the summary still reports the true extreme


class TestProcessExecutor:
    def test_digests_stable_across_runs(self, tiny_wiki, trace):
        first = run(tiny_wiki, trace, workers=2, executor="process")
        second = run(tiny_wiki, trace, workers=2, executor="process")
        assert [r.digest for r in first.reports] == [r.digest for r in second.reports]

    def test_matches_thread_executor_on_readonly_trace(self, tiny_wiki):
        """No updates means no epoch rebuilds: both executors run identical
        replica streams over identical positional shares, so the digests
        agree bit for bit across the process boundary."""
        readonly = generate_workload(
            tiny_wiki, num_ops=40, read_fraction=1.0, zipf_s=1.0, seed=21
        )
        threads = run(tiny_wiki, readonly, workers=2, executor="thread")
        processes = run(tiny_wiki, readonly, workers=2, executor="process")
        assert [r.digest for r in threads.reports] == \
            [r.digest for r in processes.reports]

    def test_every_op_accounted(self, tiny_wiki, trace):
        result = run(tiny_wiki, trace, workers=2, executor="process")
        for report in result.reports:
            assert report.executor == "process"
            assert report.num_queries == trace.num_queries
            assert report.num_updates == trace.num_updates
            assert report.latency.count == trace.num_queries
            assert report.qps > 0

    def test_unknown_executor_rejected(self, tiny_wiki, trace):
        with pytest.raises(EvaluationError, match="executor"):
            run(tiny_wiki, trace, executor="coroutine")


class TestMaintenanceMatrix:
    """Update-heavy replays across executor × maintenance combinations.

    The acceptance property of the delta path: for an incremental-capable
    method, thread replicas (per-update notification, RNG streams continue)
    and process workers absorbing the same deltas in place are the *same*
    computation — digests agree bit for bit even on a write-heavy trace.
    Under forced rebuild maintenance the process workers restart replica
    RNG at every epoch, so only reproducibility (not cross-executor
    equality) is promised there.
    """

    @pytest.fixture(scope="class")
    def heavy_trace(self, tiny_wiki):
        """Update-heavy: at read_fraction 0.5, half the ops mutate edges."""
        trace = generate_workload(
            tiny_wiki, num_ops=60, read_fraction=0.5, zipf_s=1.1, seed=21
        )
        assert trace.num_updates > 0
        return trace

    def tsf(self, graph, trace, **kwargs):
        return run(
            graph, trace, methods=["tsf"], configs={"tsf": CONFIGS["tsf"]},
            workers=2, **kwargs,
        ).reports[0]

    @pytest.mark.parametrize("cache_size", [0, 128])
    def test_thread_matches_process_delta_under_updates(
        self, tiny_wiki, heavy_trace, cache_size
    ):
        thread = self.tsf(
            tiny_wiki, heavy_trace, executor="thread", cache_size=cache_size
        )
        process = self.tsf(
            tiny_wiki, heavy_trace, executor="process",
            maintenance="delta", cache_size=cache_size,
        )
        assert thread.digest == process.digest
        assert thread.maintenance == process.maintenance == "delta"
        assert process.delta_syncs > 0
        assert process.epochs == 0  # no epoch ever published

    def test_process_delta_matches_sequential_oracle(
        self, tiny_wiki, heavy_trace
    ):
        process = self.tsf(
            tiny_wiki, heavy_trace, executor="process",
            maintenance="delta", cache_size=128,
        )
        oracle = self.tsf(
            tiny_wiki, heavy_trace, executor="sequential",
            maintenance="delta", cache_size=128,
        )
        assert process.digest == oracle.digest

    @pytest.mark.parametrize("maintenance", ["delta", "rebuild"])
    def test_each_maintenance_mode_is_reproducible(
        self, tiny_wiki, heavy_trace, maintenance
    ):
        first = self.tsf(
            tiny_wiki, heavy_trace, executor="process", maintenance=maintenance
        )
        second = self.tsf(
            tiny_wiki, heavy_trace, executor="process", maintenance=maintenance
        )
        assert first.digest == second.digest
        assert first.maintenance == maintenance

    def test_rebuild_matches_sequential_oracle(self, tiny_wiki, heavy_trace):
        process = self.tsf(
            tiny_wiki, heavy_trace, executor="process", maintenance="rebuild"
        )
        oracle = self.tsf(
            tiny_wiki, heavy_trace, executor="sequential", maintenance="rebuild"
        )
        assert process.digest == oracle.digest
        assert process.epochs > 0

    def test_delta_keeps_hot_keys_warm(self, tiny_wiki):
        """Fine-grained invalidation beats the epoch flush on hit rate:
        same Zipf-hot update-heavy trace, strictly more cache hits through
        the delta path than through forced rebuilds."""
        trace = generate_workload(
            tiny_wiki, num_ops=80, read_fraction=0.6, zipf_s=1.4, seed=27
        )
        delta = self.tsf(
            tiny_wiki, trace, executor="sequential",
            maintenance="delta", cache_size=256,
        )
        rebuild = self.tsf(
            tiny_wiki, trace, executor="sequential",
            maintenance="rebuild", cache_size=256,
        )
        assert delta.cache["hit_rate"] > rebuild.cache["hit_rate"]

    def test_unknown_maintenance_rejected(self, tiny_wiki, heavy_trace):
        with pytest.raises(EvaluationError, match="maintenance"):
            run(tiny_wiki, heavy_trace, maintenance="lazy")


class TestResultCache:
    @pytest.fixture(scope="class")
    def hot_trace(self, tiny_wiki):
        """Read-heavy Zipf traffic — the shape caching exists for (update
        batches bump the cache epoch, so write-heavy traces rarely hit)."""
        return generate_workload(
            tiny_wiki, num_ops=120, read_fraction=0.97, zipf_s=1.3, seed=21
        )

    def test_zipf_trace_produces_hits(self, tiny_wiki, hot_trace):
        result = run(tiny_wiki, hot_trace, workers=2, cache_size=256)
        cache = result.reports[0].cache
        assert cache["hits"] > 0
        assert 0.0 < cache["hit_rate"] < 1.0

    def test_cache_preserves_digest_reproducibility(self, tiny_wiki, trace):
        first = run(tiny_wiki, trace, workers=2, cache_size=256)
        second = run(tiny_wiki, trace, workers=2, cache_size=256)
        assert [r.digest for r in first.reports] == [r.digest for r in second.reports]

    def test_updates_invalidate_thread_cache(self, tiny_wiki, trace):
        assert trace.num_updates > 0
        result = run(
            tiny_wiki, trace, methods=["probesim-batched"],
            configs={"probesim-batched": CONFIGS["probesim-batched"]},
            cache_size=256,
        )
        assert result.reports[0].cache["invalidations"] > 0

    def test_process_executor_caches_too(self, tiny_wiki, hot_trace):
        result = run(
            tiny_wiki, hot_trace, methods=["probesim-batched"],
            configs={"probesim-batched": CONFIGS["probesim-batched"]},
            workers=2, executor="process", cache_size=256,
        )
        report = result.reports[0]
        assert report.cache["hits"] > 0
        assert report.cache_size == 256

    def test_cache_off_reports_empty(self, tiny_wiki, trace):
        result = run(tiny_wiki, trace)
        assert result.reports[0].cache == {}

    def test_negative_cache_rejected(self, tiny_wiki, trace):
        with pytest.raises(EvaluationError):
            run(tiny_wiki, trace, cache_size=-1)
