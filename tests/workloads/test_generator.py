"""Unit tests for the mixed query/update workload generator."""

import collections

import pytest

from repro.errors import EvaluationError
from repro.graph import DiGraph, apply_update
from repro.workloads import WorkloadConfig, generate_workload


@pytest.fixture()
def graph(tiny_wiki):
    return tiny_wiki


class TestConfig:
    def test_defaults_validate(self):
        WorkloadConfig().validate()

    @pytest.mark.parametrize("bad", [
        {"num_ops": 0},
        {"num_ops": -5},
        {"read_fraction": 1.5},
        {"insert_fraction": -0.1},
        {"zipf_s": -1.0},
        {"max_query_batch": 0},
        {"max_update_batch": 0},
    ])
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(EvaluationError):
            WorkloadConfig(**bad).validate()

    def test_as_dict_round_trips(self):
        config = WorkloadConfig(num_ops=50, seed=3)
        assert WorkloadConfig(**config.as_dict()) == config


class TestGenerate:
    def test_op_count_exact(self, graph):
        trace = generate_workload(graph, num_ops=137, seed=1)
        assert trace.num_ops == 137

    def test_deterministic_for_fixed_seed(self, graph):
        a = generate_workload(graph, num_ops=200, seed=9)
        b = generate_workload(graph, num_ops=200, seed=9)
        assert a.signature() == b.signature()
        assert [bt.kind for bt in a] == [bt.kind for bt in b]
        assert a.query_nodes() == b.query_nodes()

    def test_different_seeds_differ(self, graph):
        a = generate_workload(graph, num_ops=200, seed=9)
        b = generate_workload(graph, num_ops=200, seed=10)
        assert a.signature() != b.signature()

    def test_read_fraction_is_op_level(self, graph):
        trace = generate_workload(graph, num_ops=4000, read_fraction=0.8, seed=2)
        # per-op Bernoulli(0.8): 4000 draws, sd ~0.0063 — 5 sigma bounds
        assert 0.768 < trace.num_queries / trace.num_ops < 0.832

    def test_unequal_batch_caps_do_not_bias_the_ratio(self, graph):
        """The op-level ratio must hold even when query batches coalesce up
        to 8 ops while update batches cap at 1 (the bias a per-batch coin
        would introduce)."""
        trace = generate_workload(
            graph, num_ops=4000, read_fraction=0.5, seed=3,
            max_query_batch=8, max_update_batch=1,
        )
        assert 0.46 < trace.num_queries / trace.num_ops < 0.54

    def test_pure_read_and_pure_write(self, graph):
        reads = generate_workload(graph, num_ops=100, read_fraction=1.0, seed=3)
        assert reads.num_updates == 0
        writes = generate_workload(graph, num_ops=100, read_fraction=0.0, seed=3)
        assert writes.num_queries == 0

    def test_updates_valid_in_order(self, graph):
        trace = generate_workload(
            graph, num_ops=400, read_fraction=0.5, insert_fraction=0.5, seed=4
        )
        g = graph.copy()
        for batch in trace:
            for update in batch.updates:
                apply_update(g, update)  # raises on any invalid op

    def test_batch_sizes_capped(self, graph):
        trace = generate_workload(
            graph, num_ops=300, max_query_batch=3, max_update_batch=2, seed=5
        )
        for batch in trace:
            cap = 3 if batch.kind == "query" else 2
            assert 1 <= len(batch) <= cap

    def test_offsets_are_global_op_order(self, graph):
        trace = generate_workload(graph, num_ops=120, seed=6)
        expected = 0
        for batch in trace:
            assert batch.offset == expected
            expected += len(batch)
        assert expected == trace.num_ops

    def test_zipf_skew_concentrates_queries(self, graph):
        uniform = generate_workload(
            graph, num_ops=3000, read_fraction=1.0, zipf_s=0.0, seed=7
        )
        skewed = generate_workload(
            graph, num_ops=3000, read_fraction=1.0, zipf_s=1.2, seed=7
        )

        def top_share(trace):
            counts = collections.Counter(trace.query_nodes())
            top = sum(c for _, c in counts.most_common(5))
            return top / trace.num_queries

        assert top_share(skewed) > top_share(uniform) * 2

    def test_queries_have_nonzero_in_degree(self, graph):
        trace = generate_workload(graph, num_ops=500, read_fraction=1.0, seed=8)
        for node in set(trace.query_nodes()):
            assert graph.in_degree(node) > 0

    def test_no_eligible_query_nodes_rejected(self):
        edgeless = DiGraph(3)  # every node has in-degree 0
        with pytest.raises(EvaluationError, match="nonzero in-degree"):
            generate_workload(edgeless, num_ops=10, seed=1)

    def test_source_graph_untouched(self, graph):
        before = graph.copy()
        generate_workload(graph, num_ops=300, read_fraction=0.2, seed=9)
        assert graph == before

    def test_trace_container_protocol(self, graph):
        trace = generate_workload(graph, num_ops=50, seed=10)
        assert len(trace) >= 1
        assert trace[0].offset == 0
        assert "WorkloadTrace" in repr(trace)
