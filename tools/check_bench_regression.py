#!/usr/bin/env python
"""Fail CI when a benchmark's gate metrics regress past a threshold.

Each perf bench (``benchmarks/bench_parallel_service.py``,
``benchmarks/bench_batched_engine.py``) writes a JSON report with a flat
``gate`` block of named scalar metrics.  This tool compares a fresh report
against the committed baseline under ``benchmarks/baselines/`` and exits
non-zero when any metric regresses by more than ``--threshold`` (default
20%).

Metric direction is encoded in the name prefix:

- ``qps:…`` / ``speedup:…`` — higher is better (regression = drop);
- ``p50…`` / ``p95…`` / ``p99…`` / ``latency…`` / ``…_ms:…`` / ``…_s:…``
  — lower is better (regression = rise).

Bootstrapping: when the baseline file does not exist the check passes with
a notice (pass ``--strict`` to fail instead) so the gate can be introduced
before a baseline has been blessed; ``--update`` writes the current report
as the new baseline.  Baselines are machine-specific — re-bless after
changing CI runner hardware, not to paper over a slow commit.

Usage::

    python tools/check_bench_regression.py CURRENT.json BASELINE.json
    python tools/check_bench_regression.py CURRENT.json BASELINE.json --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: name prefixes whose metrics regress by *rising* (latencies).
LOWER_IS_BETTER = ("p50", "p95", "p99", "latency", "seconds")


def metric_direction(name: str) -> str:
    """``"higher"`` or ``"lower"`` (the value direction that is *better*)."""
    head = name.split(":", 1)[0]
    if head.startswith(("qps", "speedup", "throughput", "hit")):
        return "higher"
    if head.startswith(LOWER_IS_BETTER) or head.endswith(("_ms", "_s")):
        return "lower"
    raise SystemExit(
        f"error: gate metric {name!r} has no recognised direction prefix; "
        "name it qps:*/speedup:*/hit:* (higher-better) or p50*/p95*/p99*/"
        "latency*/*_ms/*_s (lower-better)"
    )


def load_report(path: Path) -> dict:
    """One bench report, with its ``gate`` block validated to scalars."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    gate = payload.get("gate")
    if not isinstance(gate, dict) or not gate:
        raise SystemExit(f"error: {path} has no non-empty 'gate' block")
    bad = sorted(k for k, v in gate.items() if not isinstance(v, (int, float)))
    if bad:
        raise SystemExit(f"error: {path} gate metrics are not scalars: {bad}")
    payload["gate"] = {name: float(value) for name, value in gate.items()}
    return payload


def comparable(current: dict, baseline: dict) -> str | None:
    """Why the two reports cannot be compared, or ``None`` when they can.

    Wall-clock gate metrics only mean something against a baseline from the
    same preset and the same hardware class; a mismatch (e.g. a smoke run
    against the full-preset baseline, or a baseline blessed on a laptop
    gating CI runners) must not produce confident pass/fail verdicts.
    ``backend`` extends the same rule to reports that record an execution
    backend (the native bench: numba vs the numpy fallback have different
    performance envelopes, so one's baseline must not gate the other).
    """
    for field in ("preset", "cores", "backend"):
        mine, theirs = current.get(field), baseline.get(field)
        if mine is not None and theirs is not None and mine != theirs:
            return (
                f"{field} mismatch: current={mine!r} vs baseline={theirs!r} "
                "— re-bless the baseline on the gating hardware/preset "
                "(--update)"
            )
    return None


def compare(
    current: dict[str, float], baseline: dict[str, float], threshold: float
) -> list[str]:
    """Human-readable failure lines, empty when the gate passes."""
    failures = []
    for name in sorted(baseline):
        if name not in current:
            failures.append(f"{name}: missing from the current report")
            continue
        base, now = baseline[name], current[name]
        if base == 0:
            continue  # a degenerate baseline cannot define a regression
        if metric_direction(name) == "higher":
            floor = base * (1.0 - threshold)
            if now < floor:
                failures.append(
                    f"{name}: {now:g} fell below {floor:g} "
                    f"(baseline {base:g}, threshold {threshold:.0%})"
                )
        else:
            ceiling = base * (1.0 + threshold)
            if now > ceiling:
                failures.append(
                    f"{name}: {now:g} rose above {ceiling:g} "
                    f"(baseline {base:g}, threshold {threshold:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh bench JSON report")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--update", action="store_true",
                        help="bless the current report as the new baseline")
    parser.add_argument("--strict", action="store_true",
                        help="fail (instead of pass) when no baseline exists")
    args = parser.parse_args(argv)

    current_report = load_report(args.current)
    current = current_report["gate"]
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            args.current.read_text(encoding="utf-8"), encoding="utf-8"
        )
        print(f"blessed {args.current} as baseline {args.baseline}")
        return 0
    if not args.baseline.exists():
        message = (
            f"no baseline at {args.baseline}; commit one with --update "
            "(bootstrap mode: passing)"
        )
        if args.strict:
            print(f"error: {message}", file=sys.stderr)
            return 1
        print(message)
        return 0

    baseline_report = load_report(args.baseline)
    mismatch = comparable(current_report, baseline_report)
    if mismatch:
        if args.strict:
            print(f"error: {mismatch}", file=sys.stderr)
            return 1
        print(f"not comparable — {mismatch} (passing without a verdict)")
        return 0
    baseline = baseline_report["gate"]
    failures = compare(current, baseline, args.threshold)
    shared = sorted(set(current) & set(baseline))
    print(f"compared {len(shared)} gate metrics against {args.baseline}")
    if failures:
        print("perf regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print(f"perf regression gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
