#!/usr/bin/env python
"""Check that internal markdown links resolve to real files.

Scans the repo's top-level markdown documents plus everything under
``docs/`` for ``[text](target)`` links, and fails when a *relative* target
does not exist on disk (anchors are stripped; external ``http(s)``/
``mailto`` links are skipped — this is a repo-consistency check, not a web
crawler).

Usage::

    python tools/check_links.py            # check the default document set
    python tools/check_links.py FILE...    # check specific files
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: markdown documents checked by default (plus the whole docs/ tree).
DEFAULT_DOCS = ["README.md", "ARCHITECTURE.md", "ROADMAP.md", "CHANGES.md"]

#: [text](target) — target captured; images share the syntax via ![alt](...)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: schemes that are out of scope for a filesystem check
EXTERNAL = ("http://", "https://", "mailto:")


def iter_links(path: Path):
    """Yield (line_number, target) for every markdown link in ``path``."""
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in LINK_RE.finditer(line):
            yield line_number, match.group(1)


def check_file(path: Path) -> list[str]:
    """Problems in one document, as human-readable strings."""
    problems = []
    for line_number, target in iter_links(path):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            try:
                shown = path.relative_to(REPO)
            except ValueError:
                shown = path  # a document outside the repo: show it absolute
            problems.append(f"{shown}:{line_number}: broken link -> {target}")
    return problems


def collect_default_documents() -> list[Path]:
    """The default document set: top-level docs plus the docs/ tree."""
    documents = [REPO / name for name in DEFAULT_DOCS if (REPO / name).exists()]
    documents += sorted((REPO / "docs").rglob("*.md"))
    return documents


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else argv
    documents = [Path(arg).resolve() for arg in argv] or collect_default_documents()
    problems = []
    for document in documents:
        problems += check_file(document)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print(f"checked {len(documents)} documents: all internal links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
